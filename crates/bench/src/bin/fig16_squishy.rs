//! Regenerates Figure 16: squishy scheduling vs the batch-oblivious
//! baseline on five workload mixes — 16 sessions on 8 GPUs (§7.5).
//!
//! Mixes: (a) Inception with mixed SLOs 50–200 ms, (b) ResNet with mixed
//! SLOs, (c) Inception with Zipf-0.9 mixed rates, (d) ResNet with mixed
//! rates, (e) 8 model architectures × two SLOs (50, 100 ms).
//!
//! Usage: `cargo run --release -p bench --bin fig16_squishy [--quick]`

use bench::{print_table, write_json, Args};
use nexus::prelude::*;
use nexus_profile::Micros;
use nexus_workload::{apps::AppSpec, zipf_weights};

/// Builds a single-stage app for a model at an SLO (the Fig. 16 sessions
/// are plain model/SLO streams, no query structure).
fn single_stage(model: &str, slo_ms: u64) -> AppSpec {
    AppSpec {
        name: format!("{model}@{slo_ms}"),
        slo: Micros::from_millis(slo_ms),
        stages: vec![nexus_workload::AppStage {
            model: model.to_string(),
            variants: 1,
            children: vec![],
        }],
        streams: 1,
    }
}

/// One mix: 16 (model, SLO, rate-weight) sessions.
struct Mix {
    label: &'static str,
    sessions: Vec<(String, u64, f64)>,
}

fn mixes() -> Vec<Mix> {
    let slos = [
        50u64, 75, 100, 125, 150, 175, 200, 60, 80, 110, 130, 160, 190, 70, 90, 140,
    ];
    let zipf = zipf_weights(16, 0.9);
    // Eight architectures whose batch-1 latency fits the tighter SLO of
    // the pair (SSD's 47 ms cannot meet 60 ms worst-case and is excluded).
    let models8 = [
        "lenet5",
        "vgg7",
        "resnet50",
        "inception4",
        "inception3",
        "googlenet_car",
        "vgg_face",
        "darknet53",
    ];
    vec![
        Mix {
            label: "mix SLOs / inception",
            sessions: slos
                .iter()
                .map(|&s| ("inception3".to_string(), s, 1.0 / 16.0))
                .collect(),
        },
        Mix {
            label: "mix SLOs / resnet",
            sessions: slos
                .iter()
                .map(|&s| ("resnet50".to_string(), s, 1.0 / 16.0))
                .collect(),
        },
        Mix {
            label: "mix rates / inception",
            sessions: zipf
                .iter()
                .map(|&w| ("inception3".to_string(), 100, w))
                .collect(),
        },
        Mix {
            label: "mix rates / resnet",
            sessions: zipf
                .iter()
                .map(|&w| ("resnet50".to_string(), 100, w))
                .collect(),
        },
        Mix {
            label: "mix models & SLOs",
            sessions: models8
                .iter()
                .flat_map(|m| {
                    [60u64, 120]
                        .into_iter()
                        .map(|s| (m.to_string(), s, 1.0 / 16.0))
                })
                .collect(),
        },
    ]
}

fn classes_for(mix: &Mix, total_rate: f64) -> Vec<TrafficClass> {
    mix.sessions
        .iter()
        .map(|(model, slo, w)| {
            TrafficClass::new(
                single_stage(model, *slo),
                ArrivalKind::Uniform,
                total_rate * w,
            )
        })
        .collect()
}

fn main() {
    let args = Args::parse(15);
    let search = args.search(40_000.0);
    let mut series = Vec::new();
    let rows: Vec<Vec<String>> = mixes()
        .iter()
        .map(|mix| {
            let measure = |system: &SystemConfig| {
                nexus::measure_throughput(
                    system,
                    &GPU_GTX1080TI,
                    8,
                    |rate| classes_for(mix, rate),
                    &search,
                    args.seed,
                    args.warmup(),
                    args.horizon(),
                )
            };
            let baseline = measure(&SystemConfig::nexus_no_ss());
            let squishy = measure(&SystemConfig::nexus());
            println!(
                "{:>24}: baseline {baseline:.0}, squishy {squishy:.0}",
                mix.label
            );
            series.push((mix.label, baseline, squishy));
            vec![
                mix.label.to_string(),
                format!("{baseline:.0}"),
                format!("{squishy:.0}"),
                format!("{:.2}x", squishy / baseline.max(1.0)),
            ]
        })
        .collect();
    print_table(
        "Fig. 16: squishy vs batch-oblivious scheduling (16 sessions, 8 GPUs)",
        &["mix", "baseline req/s", "nexus req/s", "relative"],
        &rows,
    );
    println!(
        "\nPaper's shape: squishy scheduling wins on every mix, the most on \
         mixed request rates (up to ~1.6×), the least on mixed model/SLO \
         mixes (~1.1×)."
    );
    write_json(&args, &series);
}
