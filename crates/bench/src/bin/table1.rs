//! Regenerates Table 1: DNN execution latencies and peak-speed cost lower
//! bounds per 1000 invocations across device classes.
//!
//! Usage: `cargo run -p bench --bin table1 [--out table1.json]`

use bench::{print_table, write_json, Args};
use nexus_profile::cost::table1;

fn main() {
    let args = Args::parse(0);
    let rows = table1();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.0}", r.cpu_latency_ms),
                if r.gpu_latency_ms < 0.1 {
                    "<0.1".to_string()
                } else if r.gpu_latency_ms < 1.0 {
                    "<1".to_string()
                } else {
                    format!("{:.1}", r.gpu_latency_ms)
                },
                format!("${:.4}", r.cpu_cost_per_1k),
                format!("${:.4}", r.tpu_cost_per_1k),
                format!("${:.4}", r.gpu_cost_per_1k),
            ]
        })
        .collect();
    print_table(
        "Table 1: DNN execution latencies and peak-speed costs per 1000 invocations",
        &[
            "model",
            "CPU lat (ms)",
            "GPU lat (ms)",
            "CPU cost",
            "TPU cost",
            "GPU cost",
        ],
        &table,
    );
    let advantage = rows[2].cpu_cost_per_1k / rows[2].gpu_cost_per_1k;
    println!(
        "\nGPU peak-cost advantage over CPU: {advantage:.1}x (paper: ~34x); \
         ResNet-class CPU latency {:.0} ms rules out live SLOs (paper: 1130 ms).",
        rows[2].cpu_latency_ms
    );
    write_json(&args, &rows);
}
