//! Regenerates Figure 14: GPU multiplexing on a single GPU (§7.5).
//!
//! (a) Aggregate max 99%-good throughput for k = 2..5 copies of Inception
//!     under a 100 ms SLO, for Clipper, TF-Serving, Nexus-parallel, and
//!     Nexus.
//! (b) The same with 3 models while sweeping the SLO from 50 to 200 ms.
//!
//! Usage: `cargo run --release -p bench --bin fig14_multiplexing [--quick]`

use bench::{print_table, write_json, Args};
use nexus::prelude::*;
use nexus_profile::catalog::INCEPTION3;
use nexus_profile::Micros;
use nexus_runtime::{simulate_node, NodeConfig, NodeSession};
use nexus_simgpu::InterferenceModel;

/// The four systems at single-node granularity: (label, coordinated,
/// policy, overlap, ladder).
fn systems() -> [(&'static str, bool, DropPolicy, bool, bool); 4] {
    [
        ("clipper", false, DropPolicy::Lazy, false, false),
        ("tf-serving", true, DropPolicy::None, false, false),
        ("nexus-parallel", false, DropPolicy::Early, true, false),
        ("nexus", true, DropPolicy::Early, true, true),
    ]
}

#[allow(clippy::too_many_arguments)]
fn max_goodput(
    k: usize,
    slo: Micros,
    coordinated: bool,
    policy: DropPolicy,
    overlap: bool,
    ladder: bool,
    args: &Args,
) -> f64 {
    let profile = INCEPTION3.profile_1080ti().effective(overlap, 4);
    let probe = |total_rate: f64| {
        let sessions: Vec<NodeSession> = (0..k)
            .map(|_| NodeSession {
                profile: profile.clone(),
                slo,
                rate: total_rate / k as f64,
                arrival: ArrivalKind::Uniform,
            })
            .collect();
        simulate_node(
            &NodeConfig {
                coordinated,
                drop_policy: policy,
                interference: InterferenceModel::default(),
                gpu_memory: 11 << 30,
                seed: args.seed,
                horizon: args.horizon(),
                warmup: args.warmup(),
                strict_batches: false,
                ladder,
                trace_capacity: 0,
            },
            &sessions,
        )
        .bad_rate
    };
    // Single-GPU planner differences (e.g. ladder rotation vs static
    // batch fitting) are ~0.5% of absolute throughput — below the default
    // bisection grid (~3 q/s at this ceiling) — so this panel runs two
    // extra refinement steps. The first `iters` probes are identical to
    // the default search, so values can only be refined upward, never
    // moved to a different coarse bracket.
    let mut search = args.search(3_000.0);
    search.iters += 2;
    nexus::max_rate_within(&search, probe)
}

fn main() {
    let args = Args::parse(20);

    // Both panels are grids of independent seeded searches — build the flat
    // point list, fan it across cores, and reassemble in input order (same
    // output as the nested loops for any thread count).
    let points_a: Vec<(usize, Micros)> = (2..=5usize)
        .map(|k| (k, Micros::from_millis(100)))
        .collect();
    let points_b: Vec<(usize, Micros)> = [50u64, 100, 150, 200]
        .into_iter()
        .map(|slo_ms| (3, Micros::from_millis(slo_ms)))
        .collect();
    #[allow(clippy::type_complexity)]
    let points: Vec<(usize, Micros, &'static str, bool, DropPolicy, bool, bool)> = points_a
        .iter()
        .chain(&points_b)
        .flat_map(|&(k, slo)| {
            systems()
                .into_iter()
                .map(move |(label, coord, policy, overlap, ladder)| {
                    (k, slo, label, coord, policy, overlap, ladder)
                })
        })
        .collect();
    let goodputs = bench::par_map(&points, |&(k, slo, _, coord, policy, overlap, ladder)| {
        max_goodput(k, slo, coord, policy, overlap, ladder, &args)
    });

    // (a) Throughput vs number of co-located models, SLO 100 ms.
    let mut series_a = Vec::new();
    let rows: Vec<Vec<String>> = (2..=5usize)
        .enumerate()
        .map(|(i, k)| {
            let mut row = vec![k.to_string()];
            for (j, (label, ..)) in systems().into_iter().enumerate() {
                let tp = goodputs[4 * i + j];
                series_a.push((label, k, tp));
                row.push(format!("{tp:.0}"));
            }
            row
        })
        .collect();
    print_table(
        "Fig. 14(a): aggregate throughput vs #models (Inception, 100 ms SLO, 1 GPU)",
        &[
            "#models",
            "clipper",
            "tf-serving",
            "nexus-parallel",
            "nexus",
        ],
        &rows,
    );

    // (b) Throughput vs SLO with 3 models.
    let offset = 4 * points_a.len();
    let mut series_b = Vec::new();
    let rows: Vec<Vec<String>> = [50u64, 100, 150, 200]
        .into_iter()
        .enumerate()
        .map(|(i, slo_ms)| {
            let mut row = vec![format!("{slo_ms}")];
            for (j, (label, ..)) in systems().into_iter().enumerate() {
                let tp = goodputs[offset + 4 * i + j];
                series_b.push((label, slo_ms, tp));
                row.push(format!("{tp:.0}"));
            }
            row
        })
        .collect();
    print_table(
        "Fig. 14(b): aggregate throughput vs SLO (3 Inception models, 1 GPU)",
        &[
            "SLO (ms)",
            "clipper",
            "tf-serving",
            "nexus-parallel",
            "nexus",
        ],
        &rows,
    );
    println!(
        "\nPaper's shape: all systems degrade as models multiply; Clipper worst \
         (interfering containers), TF better (round-robin), Nexus-parallel \
         better still (no idling, residual interference), Nexus best. Looser \
         SLOs narrow the Nexus-parallel gap."
    );
    write_json(&args, &(series_a, series_b));
}
