//! Regenerates the §7.4 optimality study: a controlled uniform workload on
//! a 16-GPU (GTX 1080Ti) cluster, comparing the GPUs Nexus actually needs
//! against the aggressive theoretical lower bound (every session at its
//! profile's peak throughput, fully batchable, back-to-back, no SLOs).
//!
//! Paper result: 11.7 GPUs used vs a 9.8-GPU lower bound — 84% of optimal —
//! with a bad rate under 1%.
//!
//! Usage: `cargo run --release -p bench --bin sec74_optimality [--quick]`

use bench::{print_table, write_json, Args};
use nexus::prelude::*;
use nexus_runtime::build_sessions;
use nexus_scheduler::{lower_bound_gpus, squishy_bin_packing};
use nexus_workload::all_apps;

fn main() {
    let args = Args::parse(60);

    // A controlled uniform workload: all seven apps at fixed rates, sized
    // so the demand lands near the paper's ~12-GPU operating point.
    let rates = [
        ("game", 950.0),
        ("traffic", 130.0),
        ("dance", 65.0),
        ("bb", 50.0),
        ("bike", 40.0),
        ("amber", 35.0),
        ("logo", 25.0),
    ];
    let classes: Vec<TrafficClass> = all_apps()
        .into_iter()
        .map(|app| {
            let rate = rates.iter().find(|(n, _)| *n == app.name).unwrap().1;
            TrafficClass::new(app, ArrivalKind::Uniform, rate)
        })
        .collect();

    // The demand-sized squishy allocation and the theoretical lower bound,
    // both from the same session table (§7.4's methodology).
    let system = SystemConfig::nexus();
    let (sessions, _) =
        build_sessions(&classes, &system, &GPU_GTX1080TI, None).expect("known models");
    let specs: Vec<SessionSpec> = sessions
        .iter()
        .map(|s| SessionSpec::new(s.id, s.exec_profile.clone(), s.budget, s.est_rate))
        .collect();
    let lower_bound = lower_bound_gpus(&specs);
    let packed = squishy_bin_packing(&specs, GPU_GTX1080TI.memory_bytes);
    let gpus_used = packed.gpu_count();
    let efficiency = lower_bound / gpus_used as f64;

    // Run the deployment on the paper's 16-GPU cluster (idle GPUs become
    // burst headroom, as in any real deployment); the efficiency metric
    // compares the scheduler's demand-sized allocation to the bound.
    let result = nexus::run_once(
        system.with_static_allocation(),
        GPU_GTX1080TI,
        16,
        classes,
        args.seed,
        args.warmup(),
        args.horizon(),
    );

    print_table(
        "§7.4: scheduling efficiency vs the theoretical lower bound",
        &["metric", "value"],
        &[
            vec![
                "theoretical lower bound (GPUs)".into(),
                format!("{lower_bound:.1}"),
            ],
            vec!["GPUs Nexus allocates".into(), format!("{gpus_used}")],
            vec![
                "efficiency (LB / allocated)".into(),
                format!("{:.0}%", efficiency * 100.0),
            ],
            vec![
                "query bad rate at that allocation".into(),
                format!("{:.3}%", result.query_bad_rate * 100.0),
            ],
            vec![
                "GPU utilization".into(),
                format!("{:.0}%", result.gpu_utilization * 100.0),
            ],
            vec![
                "queries finished".into(),
                format!("{}", result.queries_finished),
            ],
        ],
    );
    println!(
        "\nPaper: 11.7 GPUs used vs 9.8 lower bound (84% efficiency), bad \
         rate < 1%. The lower bound ignores SLOs, prefix-batching limits and \
         packing losses, so efficiency below 100% is expected."
    );
    write_json(
        &args,
        &(lower_bound, gpus_used, efficiency, result.query_bad_rate),
    );
}
