//! Regenerates Figure 11: the traffic-monitoring ablation study (§7.3.2)
//! on a 16-GPU cluster — max 99%-good query rate for TF-Serving, Clipper,
//! full Nexus, and Nexus with -QA, -SS, -ED, -OL ablations.
//!
//! The workload: SSD object detection on every frame, with detected cars
//! fed to GoogleNet-car and faces to VGG-Face; 400 ms end-to-end SLO.
//!
//! Usage: `cargo run --release -p bench --bin fig11_traffic [--quick]`

use bench::{ablation_ladder, print_table, traffic_classes, write_json, Args};
use nexus::prelude::*;

fn main() {
    let args = Args::parse(20);
    let search = args.search(4_000.0);
    let mut series = Vec::new();
    let mut rows = Vec::new();
    let mut nexus_tp = 0.0;
    for (label, system) in ablation_ladder(true) {
        let tp = nexus::measure_throughput(
            &system,
            &GPU_GTX1080TI,
            16,
            traffic_classes,
            &search,
            args.seed,
            args.warmup(),
            args.horizon(),
        );
        if label == "nexus" {
            nexus_tp = tp;
        }
        println!("{label:>12}: {tp:.0} req/s");
        series.push((label, tp));
        rows.push(vec![label.to_string(), format!("{tp:.0}")]);
    }
    for row in &mut rows {
        let tp: f64 = row[1].parse().unwrap();
        row.push(if nexus_tp > 0.0 {
            format!("{:.2}x", tp / nexus_tp)
        } else {
            "-".into()
        });
    }
    print_table(
        "Fig. 11: traffic-monitoring throughput (max rate with ≥99% within 400 ms SLO, 16 GPUs)",
        &["system", "req/s", "vs nexus"],
        &rows,
    );
    println!(
        "\nPaper's shape: Nexus 1.8–2.4× the baselines; -QA costs ~19% (even \
         splits starve the SSD detector); -OL matters far less than in the \
         game study (relaxed SLO + large models hide preprocessing)."
    );
    write_json(&args, &series);
}
