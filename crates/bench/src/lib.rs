//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4). This library provides the common pieces: a tiny CLI
//! (`--seed`, `--secs`, `--quick`, `--out`), an aligned-table printer, JSON
//! series output, and workload builders shared across experiments.

pub mod hetero;
pub mod par;
pub mod workload_file;

pub use par::{par_map, thread_count};

use std::fmt::Write as _;
use std::path::PathBuf;

use serde::Serialize;

use nexus::prelude::*;
use nexus_profile::Micros;

/// Common command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// RNG seed (`--seed N`).
    pub seed: u64,
    /// Measured seconds per simulation (`--secs N`).
    pub secs: u64,
    /// Quick mode: shorter runs, fewer search iterations (`--quick`).
    pub quick: bool,
    /// Optional JSON output path (`--out FILE`).
    pub out: Option<PathBuf>,
    /// Optional execution-trace output path (`--trace FILE`); binaries that
    /// support it run their headline simulation with tracing enabled and
    /// write the capture here (`nexus-trace export` renders it).
    pub trace: Option<PathBuf>,
    /// Event-loop shard count (`--shards N`, ≥ 1). Sharding is a pure
    /// scheduling-state partition: results are byte-identical at every
    /// value, which ci.sh exploits as a determinism gate.
    pub shards: usize,
    /// Event-loop worker threads (`--threads N`, ≥ 1; defaults to
    /// `NEXUS_SIM_THREADS`, else 1). Like shards, a pure execution knob:
    /// the windowed parallel executor (DESIGN.md §14) is byte-identical
    /// to the serial loop, and ci.sh diffs threads 1 vs 4 to prove it.
    pub threads: usize,
    /// Optional deterministic-summary output path (`--det-out FILE`):
    /// only run outputs that must not vary between repeat runs (event
    /// counts, bad-rate bit patterns) — no wall-clock-derived numbers —
    /// so two files from identical workloads diff byte-for-byte.
    pub det_out: Option<PathBuf>,
}

impl Args {
    /// Parses `std::env::args`, with experiment-appropriate defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_secs: u64) -> Args {
        let mut args = Args {
            seed: 42,
            secs: default_secs,
            quick: false,
            out: None,
            trace: None,
            shards: 1,
            threads: nexus::default_threads(),
            det_out: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer")
                }
                "--secs" => {
                    args.secs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--secs needs an integer")
                }
                "--quick" => args.quick = true,
                "--out" => args.out = Some(PathBuf::from(it.next().expect("--out needs a path"))),
                "--trace" => {
                    args.trace = Some(PathBuf::from(it.next().expect("--trace needs a path")))
                }
                "--shards" => {
                    args.shards = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .expect("--shards needs an integer >= 1")
                }
                "--threads" => {
                    args.threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .expect("--threads needs an integer >= 1")
                }
                "--det-out" => {
                    args.det_out = Some(PathBuf::from(it.next().expect("--det-out needs a path")))
                }
                other => panic!(
                    "unknown argument {other:?} \
                     (supported: --seed N --secs N --quick --shards N \
                     --threads N --out FILE --det-out FILE --trace FILE)"
                ),
            }
        }
        if args.quick {
            args.secs = args.secs.min(10);
        }
        args
    }

    /// The simulation horizon for this run.
    pub fn horizon(&self) -> Micros {
        Micros::from_secs(self.secs + self.warmup_secs())
    }

    /// Warm-up excluded from measurement.
    pub fn warmup(&self) -> Micros {
        Micros::from_secs(self.warmup_secs())
    }

    fn warmup_secs(&self) -> u64 {
        (self.secs / 4).clamp(2, 10)
    }

    /// Throughput-search settings scaled to quick mode.
    pub fn search(&self, hi: f64) -> ThroughputSearch {
        ThroughputSearch {
            target_bad_rate: 0.01,
            lo: 1.0,
            hi,
            iters: if self.quick { 7 } else { 10 },
        }
    }
}

/// Renders an aligned table — a header row, then rows of cells — as the
/// string [`print_table`] prints (so a section can also be written to a
/// committed `.txt` artifact).
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ");
    }
    let _ = writeln!(out, "{line}");
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ");
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Prints an aligned table: a header row, then rows of cells.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, header, rows));
}

/// Writes a serializable result to `--out` (if given) as pretty JSON.
pub fn write_json<T: Serialize>(args: &Args, value: &T) {
    if let Some(path) = &args.out {
        let json = serde_json::to_string_pretty(value).expect("serializable result");
        std::fs::write(path, json).expect("writable --out path");
        println!("(wrote {})", path.display());
    }
}

/// Writes the deterministic subset of a simbench-style series to
/// `--det-out` (if given): GPU count, event count, and the exact bit
/// pattern of the bad rate — no wall-clock-derived numbers. Any two runs
/// of the same workload must produce byte-identical files regardless of
/// machine noise, `--shards`, or `--threads`; ci.sh diffs them as the
/// shard- and thread-determinism gates.
pub fn write_det_json(args: &Args, series: &[(u32, u64, f64, f64, f64)]) {
    if let Some(path) = &args.det_out {
        let det: Vec<serde_json::Value> = series
            .iter()
            .map(|&(gpus, events, _, _, bad)| {
                serde_json::json!({
                    "gpus": gpus,
                    "events": events,
                    "bad_rate_bits": format!("{:016x}", bad.to_bits()),
                })
            })
            .collect();
        let json = serde_json::to_string_pretty(&det).expect("serializable summary");
        std::fs::write(path, json).expect("writable --det-out path");
        println!("(wrote {})", path.display());
    }
}

/// The trace capacity a headline run should use: sized for multi-minute
/// runs when `--trace` was given, zero (tracing fully off-path) otherwise.
pub fn trace_capacity(args: &Args) -> usize {
    if args.trace.is_some() {
        4_000_000
    } else {
        0
    }
}

/// Writes a run's captured trace to `--trace` (if given) in the versioned
/// `nexus-obs` file format, logging truncation loudly — an incomplete
/// capture silently read as complete would corrupt downstream analysis.
pub fn write_trace(args: &Args, result: &SimResult) {
    let Some(path) = &args.trace else { return };
    let Some(trace) = &result.trace else {
        eprintln!("--trace given but the run captured no trace");
        return;
    };
    let doc = nexus_obs::raw::encode(trace.events(), trace.truncated, None);
    std::fs::write(path, doc.to_string()).expect("writable --trace path");
    println!(
        "(wrote {} trace events to {})",
        trace.events().len(),
        path.display()
    );
    if result.trace_truncated > 0 {
        eprintln!(
            "warning: trace truncated — {} events discarded after the \
             capture buffer filled",
            result.trace_truncated
        );
    }
}

// The Fig. 13 deployment workload now lives in the facade crate (so the
// `nexus-trace capture` CLI can regenerate it); re-exported here for the
// figure binaries.
pub use nexus::workloads::fig13_classes;

/// Traffic classes for the game case study (§7.3.1) at a total frame rate.
pub fn game_classes(rate: f64) -> Vec<TrafficClass> {
    vec![TrafficClass::new(
        nexus_workload::apps::game(),
        ArrivalKind::Uniform,
        rate,
    )]
}

/// The game case study reduced to its ResNet-50 stage only. §7.3.1: "To be
/// maximally fair to them, we allow the two baselines to invoke just the
/// ResNet model" — both Clipper and TF Serving collapse on the tiny LeNet.
pub fn game_resnet_only_classes(rate: f64) -> Vec<TrafficClass> {
    let mut app = nexus_workload::apps::game();
    app.stages[0].children.clear();
    app.stages.truncate(1);
    vec![TrafficClass::new(app, ArrivalKind::Uniform, rate)]
}

/// Traffic classes for the traffic-monitoring case study (§7.3.2).
pub fn traffic_classes(rate: f64) -> Vec<TrafficClass> {
    vec![TrafficClass::new(
        nexus_workload::apps::traffic(),
        ArrivalKind::Uniform,
        rate,
    )]
}

/// The ablation ladder of Fig. 10/11. §7.3.1: "we additively turn off
/// prefix batching (PB), squishy scheduling (SS), early drop (ED), and
/// overlapped processing (OL)" — each rung disables one MORE feature than
/// the previous. `qa_instead_of_pb` selects the traffic figure's first rung
/// (-QA) over the game figure's (-PB).
pub fn ablation_ladder(qa_instead_of_pb: bool) -> Vec<(&'static str, SystemConfig)> {
    let mut step = SystemConfig::nexus();
    let mut ladder = vec![
        ("tf-serving", SystemConfig::tf_serving()),
        ("clipper", SystemConfig::clipper()),
        ("nexus", step.clone()),
    ];
    if qa_instead_of_pb {
        step.query_analysis = false;
        ladder.push(("-QA", step.clone()));
    } else {
        step.prefix_batching = false;
        ladder.push(("-PB", step.clone()));
    }
    step.scheduler = SchedulerPolicy::BatchOblivious;
    ladder.push(("-SS", step.clone()));
    step.drop_policy = DropPolicy::Lazy;
    ladder.push(("-ED", step.clone()));
    step.overlap = false;
    ladder.push(("-OL", step.clone()));
    ladder
}

/// A Fig.5/Fig.9 synthetic profile: optimal throughput 500 req/s at a
/// 100 ms SLO, parameterized by α (§4.3: "Given the fixed throughput, the
/// fixed cost of β reduces as we increase α").
///
/// Construction: the SLO-max batch is `B = 25` with `ℓ(B) = 50 ms`
/// (worst-case `2ℓ(B) = SLO`), so `B/ℓ(B) = 500` req/s; `β = (2 − α)·25`.
pub fn alpha_profile(alpha_ms: f64) -> nexus_profile::BatchingProfile {
    assert!((0.0..2.0).contains(&alpha_ms), "α must be below 2 ms");
    let beta_ms = (2.0 - alpha_ms) * 25.0;
    nexus_profile::BatchingProfile::from_linear_ms(alpha_ms, beta_ms, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_profile_has_designed_optimum() {
        for alpha in [1.0, 1.4, 1.8] {
            let p = alpha_profile(alpha);
            let b = p.max_batch_for_slo(Micros::from_millis(100));
            assert_eq!(b, 25, "α={alpha}");
            let t = p.throughput(b);
            assert!((t - 500.0).abs() < 1.0, "α={alpha}: t={t}");
        }
    }

    #[test]
    fn ladder_has_seven_rungs() {
        assert_eq!(ablation_ladder(false).len(), 7);
        let labels: Vec<_> = ablation_ladder(true).iter().map(|x| x.0).collect();
        assert!(labels.contains(&"-QA"));
        assert!(!labels.contains(&"-PB"));
    }
}
