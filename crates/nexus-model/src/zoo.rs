//! Schemas for the catalogued models.
//!
//! Each builder produces a layer chain whose total parameter bytes and
//! GFLOPs match the [`nexus_profile::catalog`] spec for that model, with the
//! compute/parameter distribution of the real architecture approximated at
//! block granularity: convolutional backbones carry most of the FLOPs, final
//! fully-connected layers carry a parameter-heavy, compute-light tail. That
//! tail is what transfer learning retrains, so getting the split roughly
//! right is what makes the prefix-batching numbers (Fig. 15) meaningful.

use nexus_profile::catalog::{self, ModelSpec};

use crate::layer::{Layer, LayerKind};
use crate::schema::ModelSchema;

/// Distributes a model's parameters and compute over a backbone skeleton.
///
/// `skeleton` lists `(kind, param_weight, flops_weight)` rows; absolute
/// bytes/GFLOPs are allocated proportionally so totals match `spec`.
fn build_from_skeleton(
    spec: &ModelSpec,
    input: (u32, u32, u32),
    skeleton: &[(LayerKind, f64, f64)],
) -> ModelSchema {
    let param_total: f64 = skeleton.iter().map(|s| s.1).sum();
    let flops_total: f64 = skeleton.iter().map(|s| s.2).sum();
    assert!(param_total > 0.0 && flops_total > 0.0);
    let mut layers = Vec::with_capacity(skeleton.len() + 1);
    let (channels, height, width) = input;
    layers.push(Layer::new(
        LayerKind::Input {
            channels,
            height,
            width,
        },
        0,
        0.0,
    ));
    for (kind, pw, fw) in skeleton {
        let bytes = (spec.weight_bytes as f64 * pw / param_total).round() as u64;
        let gflops = spec.gflops * fw / flops_total;
        layers.push(Layer::new(kind.clone(), bytes, gflops));
    }
    ModelSchema::new(spec.name, layers)
}

/// LeNet-5: two conv layers, two FC layers, softmax.
pub fn lenet5() -> ModelSchema {
    build_from_skeleton(
        &catalog::LENET5,
        (1, 28, 28),
        &[
            (
                LayerKind::Conv {
                    out_channels: 6,
                    kernel: 5,
                    stride: 1,
                },
                0.5,
                25.0,
            ),
            (LayerKind::Pool { window: 2 }, 0.1, 1.0),
            (
                LayerKind::Conv {
                    out_channels: 16,
                    kernel: 5,
                    stride: 1,
                },
                5.0,
                40.0,
            ),
            (LayerKind::Pool { window: 2 }, 0.1, 1.0),
            (LayerKind::Fc { out_features: 120 }, 60.0, 20.0),
            (LayerKind::Fc { out_features: 84 }, 30.0, 10.0),
            (LayerKind::Softmax { classes: 10 }, 4.0, 3.0),
        ],
    )
}

/// Compact VGG-7.
pub fn vgg7() -> ModelSchema {
    build_from_skeleton(
        &catalog::VGG7,
        (3, 64, 64),
        &[
            (
                LayerKind::Conv {
                    out_channels: 32,
                    kernel: 3,
                    stride: 1,
                },
                2.0,
                20.0,
            ),
            (
                LayerKind::Conv {
                    out_channels: 64,
                    kernel: 3,
                    stride: 1,
                },
                5.0,
                30.0,
            ),
            (LayerKind::Pool { window: 2 }, 0.0001, 0.5),
            (
                LayerKind::Conv {
                    out_channels: 128,
                    kernel: 3,
                    stride: 1,
                },
                13.0,
                30.0,
            ),
            (LayerKind::Pool { window: 2 }, 0.0001, 0.5),
            (LayerKind::Fc { out_features: 512 }, 70.0, 15.0),
            (LayerKind::Softmax { classes: 1000 }, 10.0, 4.0),
        ],
    )
}

/// ResNet-50: stem + four residual stages + classifier head.
pub fn resnet50() -> ModelSchema {
    build_from_skeleton(
        &catalog::RESNET50,
        (3, 224, 224),
        &[
            (
                LayerKind::Conv {
                    out_channels: 64,
                    kernel: 7,
                    stride: 2,
                },
                0.5,
                12.0,
            ),
            (LayerKind::Pool { window: 3 }, 0.0001, 0.5),
            (LayerKind::ResidualBlock { out_channels: 256 }, 3.0, 22.0),
            (LayerKind::ResidualBlock { out_channels: 512 }, 5.0, 25.0),
            (LayerKind::ResidualBlock { out_channels: 1024 }, 28.0, 25.0),
            (LayerKind::ResidualBlock { out_channels: 2048 }, 55.0, 14.0),
            (LayerKind::Pool { window: 7 }, 0.0001, 0.1),
            (LayerKind::Fc { out_features: 1000 }, 8.0, 1.0),
            (LayerKind::Softmax { classes: 1000 }, 0.5, 0.4),
        ],
    )
}

/// Inception-V4.
pub fn inception4() -> ModelSchema {
    build_from_skeleton(
        &catalog::INCEPTION4,
        (3, 299, 299),
        &[
            (
                LayerKind::Conv {
                    out_channels: 32,
                    kernel: 3,
                    stride: 2,
                },
                0.5,
                8.0,
            ),
            (LayerKind::InceptionBlock { out_channels: 384 }, 15.0, 30.0),
            (LayerKind::InceptionBlock { out_channels: 1024 }, 35.0, 35.0),
            (LayerKind::InceptionBlock { out_channels: 1536 }, 42.0, 25.0),
            (LayerKind::Pool { window: 8 }, 0.0001, 0.1),
            (LayerKind::Fc { out_features: 1000 }, 7.0, 1.5),
            (LayerKind::Softmax { classes: 1000 }, 0.5, 0.4),
        ],
    )
}

/// Inception-V3 (the Fig. 14 / Fig. 17 micro-benchmark model).
pub fn inception3() -> ModelSchema {
    build_from_skeleton(
        &catalog::INCEPTION3,
        (3, 299, 299),
        &[
            (
                LayerKind::Conv {
                    out_channels: 32,
                    kernel: 3,
                    stride: 2,
                },
                0.5,
                10.0,
            ),
            (LayerKind::InceptionBlock { out_channels: 288 }, 14.0, 35.0),
            (LayerKind::InceptionBlock { out_channels: 768 }, 38.0, 35.0),
            (LayerKind::InceptionBlock { out_channels: 1280 }, 40.0, 18.0),
            (LayerKind::Pool { window: 8 }, 0.0001, 0.1),
            (LayerKind::Fc { out_features: 1000 }, 7.0, 1.5),
            (LayerKind::Softmax { classes: 1000 }, 0.5, 0.4),
        ],
    )
}

/// Darknet-53.
pub fn darknet53() -> ModelSchema {
    build_from_skeleton(
        &catalog::DARKNET53,
        (3, 416, 416),
        &[
            (
                LayerKind::Conv {
                    out_channels: 32,
                    kernel: 3,
                    stride: 1,
                },
                0.5,
                10.0,
            ),
            (LayerKind::ResidualBlock { out_channels: 128 }, 8.0, 25.0),
            (LayerKind::ResidualBlock { out_channels: 256 }, 16.0, 25.0),
            (LayerKind::ResidualBlock { out_channels: 512 }, 30.0, 25.0),
            (LayerKind::ResidualBlock { out_channels: 1024 }, 40.0, 13.0),
            (LayerKind::Fc { out_features: 1000 }, 5.0, 1.6),
            (LayerKind::Softmax { classes: 1000 }, 0.5, 0.4),
        ],
    )
}

/// SSD object detector: VGG-style backbone + detection head.
pub fn ssd() -> ModelSchema {
    build_from_skeleton(
        &catalog::SSD,
        (3, 512, 512),
        &[
            (
                LayerKind::Conv {
                    out_channels: 64,
                    kernel: 3,
                    stride: 1,
                },
                2.0,
                20.0,
            ),
            (
                LayerKind::Conv {
                    out_channels: 256,
                    kernel: 3,
                    stride: 1,
                },
                25.0,
                35.0,
            ),
            (
                LayerKind::Conv {
                    out_channels: 512,
                    kernel: 3,
                    stride: 1,
                },
                45.0,
                30.0,
            ),
            (LayerKind::DetectionHead { classes: 21 }, 28.0, 15.0),
        ],
    )
}

/// VGG-Face recognizer: VGG-16 backbone with an identity-embedding head.
pub fn vgg_face() -> ModelSchema {
    build_from_skeleton(
        &catalog::VGG_FACE,
        (3, 224, 224),
        &[
            (
                LayerKind::Conv {
                    out_channels: 64,
                    kernel: 3,
                    stride: 1,
                },
                0.5,
                20.0,
            ),
            (
                LayerKind::Conv {
                    out_channels: 256,
                    kernel: 3,
                    stride: 1,
                },
                5.0,
                40.0,
            ),
            (
                LayerKind::Conv {
                    out_channels: 512,
                    kernel: 3,
                    stride: 1,
                },
                15.0,
                30.0,
            ),
            (LayerKind::Fc { out_features: 4096 }, 70.0, 9.0),
            (LayerKind::Fc { out_features: 2622 }, 9.5, 1.0),
        ],
    )
}

/// GoogleNet car make/model classifier.
pub fn googlenet_car() -> ModelSchema {
    build_from_skeleton(
        &catalog::GOOGLENET_CAR,
        (3, 224, 224),
        &[
            (
                LayerKind::Conv {
                    out_channels: 64,
                    kernel: 7,
                    stride: 2,
                },
                1.0,
                15.0,
            ),
            (LayerKind::InceptionBlock { out_channels: 480 }, 25.0, 40.0),
            (LayerKind::InceptionBlock { out_channels: 832 }, 55.0, 40.0),
            (LayerKind::Pool { window: 7 }, 0.0001, 0.1),
            (LayerKind::Fc { out_features: 431 }, 18.0, 4.5),
            (LayerKind::Softmax { classes: 431 }, 1.0, 0.4),
        ],
    )
}

/// Builds the schema for a catalogued model by name.
pub fn by_name(name: &str) -> Option<ModelSchema> {
    match name {
        "lenet5" => Some(lenet5()),
        "vgg7" => Some(vgg7()),
        "resnet50" => Some(resnet50()),
        "inception4" => Some(inception4()),
        "inception3" => Some(inception3()),
        "darknet53" => Some(darknet53()),
        "ssd" => Some(ssd()),
        "vgg_face" => Some(vgg_face()),
        "googlenet_car" => Some(googlenet_car()),
        _ => None,
    }
}

/// All zoo builders paired with their catalog spec.
pub fn all() -> Vec<(&'static ModelSpec, ModelSchema)> {
    catalog::ALL_MODELS
        .iter()
        .map(|spec| (*spec, by_name(spec.name).expect("zoo covers catalog")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_covers_entire_catalog() {
        let models = all();
        assert_eq!(models.len(), catalog::ALL_MODELS.len());
    }

    #[test]
    fn totals_match_catalog_spec() {
        for (spec, schema) in all() {
            let bytes = schema.total_param_bytes();
            let spec_bytes = spec.weight_bytes;
            let byte_err = (bytes as f64 - spec_bytes as f64).abs() / spec_bytes as f64;
            assert!(byte_err < 0.001, "{}: bytes off by {byte_err}", spec.name);
            let gf = schema.total_gflops();
            assert!(
                (gf - spec.gflops).abs() / spec.gflops < 1e-9,
                "{}: gflops {gf} vs {}",
                spec.name,
                spec.gflops
            );
        }
    }

    #[test]
    fn classifier_tails_are_compute_light() {
        // The last two layers (FC + softmax or equivalent) of each
        // classification model must hold a small share of FLOPs — that is
        // why suffix execution after a shared prefix is cheap.
        for name in ["resnet50", "inception4", "inception3", "googlenet_car"] {
            let schema = by_name(name).unwrap();
            let n = schema.num_layers();
            let tail_fraction = 1.0 - schema.prefix_flops_fraction(n - 2);
            assert!(
                tail_fraction < 0.10,
                "{name}: classifier tail holds {tail_fraction:.2} of FLOPs"
            );
        }
    }

    #[test]
    fn distinct_models_do_not_share_prefixes() {
        let a = resnet50();
        let b = inception4();
        // Different input shapes ⇒ not even the input layer is shared.
        assert_eq!(a.common_prefix_len(&b), 0);
    }

    #[test]
    fn same_builder_is_deterministic() {
        assert_eq!(resnet50().full_hash(), resnet50().full_hash());
    }
}
