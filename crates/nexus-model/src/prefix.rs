//! Prefix-batching: detecting shared model prefixes and costing their
//! batched execution.
//!
//! §6.3 "Prefix Batching": transfer-learned variants differ only in their
//! last layer(s). Nexus loads the shared prefix once, executes it as a
//! single large batch, and then runs the small per-variant suffixes
//! sequentially on their sub-batches. This module finds the groups (via the
//! schema prefix hashes) and derives the execution-cost and memory model the
//! simulator and scheduler use.

use serde::{Deserialize, Serialize};

use nexus_profile::{BatchingProfile, Micros};

use crate::schema::ModelSchema;

/// Fixed kernel-launch overhead of executing one variant suffix, in
/// microseconds. Suffixes are one or a few FC layers; their invocation cost
/// is a couple of kernel launches.
pub const SUFFIX_LAUNCH_OVERHEAD_US: f64 = 50.0;

/// Per-runtime framework context, mirroring
/// `ModelSpec::runtime_memory_bytes`. A prefix-batched group shares ONE
/// runtime context across all its variants — that is where the Fig. 15(b)
/// memory win comes from.
const WORKSPACE_BYTES: u64 = 1024 * 1024 * 1024;

/// A set of models sharing a common prefix of `prefix_len` layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixGroup {
    /// Number of shared leading layers.
    pub prefix_len: usize,
    /// Fingerprint of the shared prefix.
    pub prefix_hash: u64,
    /// Indices (into the caller's slice) of the member models.
    pub members: Vec<usize>,
}

/// Finds maximal groups of models sharing a prefix, deepest prefixes first.
///
/// Each model joins at most one group (the deepest available); models that
/// share nothing with anyone are not in any group. This mirrors the model
/// database's ingest-time comparison of sub-tree hashes.
///
/// # Examples
///
/// ```
/// use nexus_model::{find_prefix_groups, zoo};
///
/// let base = zoo::resnet50();
/// let game1 = base.specialize("resnet50-game1", 1, 1);
/// let game2 = base.specialize("resnet50-game2", 1, 2);
/// let groups = find_prefix_groups(&[&base, &game1, &game2]);
/// assert_eq!(groups.len(), 1);
/// assert_eq!(groups[0].members, vec![0, 1, 2]);
/// assert_eq!(groups[0].prefix_len, base.num_layers() - 1);
/// ```
pub fn find_prefix_groups(schemas: &[&ModelSchema]) -> Vec<PrefixGroup> {
    use std::collections::HashMap;

    let max_depth = schemas.iter().map(|s| s.num_layers()).max().unwrap_or(0);
    let mut grouped = vec![false; schemas.len()];
    let mut groups = Vec::new();
    for depth in (1..=max_depth).rev() {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, schema) in schemas.iter().enumerate() {
            if !grouped[i] && schema.num_layers() >= depth {
                buckets
                    .entry(schema.prefix_hash(depth))
                    .or_default()
                    .push(i);
            }
        }
        let mut new_groups: Vec<PrefixGroup> = buckets
            .into_iter()
            .filter(|(_, members)| members.len() >= 2)
            .map(|(prefix_hash, members)| PrefixGroup {
                prefix_len: depth,
                prefix_hash,
                members,
            })
            .collect();
        // Sort for deterministic output (HashMap iteration order is not).
        new_groups.sort_by_key(|g| g.members[0]);
        for g in &new_groups {
            for &m in &g.members {
                grouped[m] = true;
            }
        }
        groups.extend(new_groups);
    }
    groups.sort_by_key(|g| g.members[0]);
    groups
}

/// Cost model for executing a prefix group as one batched prefix plus
/// sequential per-variant suffixes.
///
/// Derived from the base model's batching profile `ℓ(b) = α·b + β` by
/// splitting `α` proportionally to the FLOPs in prefix vs. suffix. The
/// batch-invocation overhead `β` is paid once by the prefix (it covers input
/// assembly and the long kernel sequence); each suffix adds only its small
/// launch overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixPlan {
    /// Shared leading layers.
    pub prefix_len: usize,
    /// Marginal per-input prefix cost, microseconds.
    pub prefix_alpha_us: f64,
    /// Fixed prefix invocation cost, microseconds.
    pub prefix_beta_us: f64,
    /// Marginal per-input suffix cost, microseconds.
    pub suffix_alpha_us: f64,
    /// Fixed per-suffix-invocation cost, microseconds.
    pub suffix_beta_us: f64,
    /// Resident bytes of the shared prefix (weights + workspace).
    pub prefix_memory_bytes: u64,
    /// Resident bytes of one variant's suffix weights.
    pub suffix_memory_bytes: u64,
}

impl PrefixPlan {
    /// Builds the plan for variants of `base` sharing `prefix_len` layers,
    /// given the base model's measured profile.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len` is zero or not smaller than the layer count.
    pub fn new(base: &ModelSchema, profile: &BatchingProfile, prefix_len: usize) -> Self {
        assert!(
            prefix_len >= 1 && prefix_len < base.num_layers(),
            "prefix_len must leave a non-empty suffix"
        );
        let fit = profile.fit_linear();
        let frac = base.prefix_flops_fraction(prefix_len);
        PrefixPlan {
            prefix_len,
            prefix_alpha_us: fit.alpha_us * frac,
            prefix_beta_us: fit.beta_us,
            suffix_alpha_us: fit.alpha_us * (1.0 - frac),
            suffix_beta_us: SUFFIX_LAUNCH_OVERHEAD_US,
            prefix_memory_bytes: base.prefix_param_bytes(prefix_len)
                + base.prefix_param_bytes(prefix_len) / 5
                + WORKSPACE_BYTES,
            suffix_memory_bytes: base.suffix_param_bytes(prefix_len),
        }
    }

    /// GPU latency of one prefix-batched round: the shared prefix runs once
    /// over all inputs, then each variant's suffix runs on its sub-batch.
    pub fn batch_latency(&self, sub_batches: &[u32]) -> Micros {
        let total: u32 = sub_batches.iter().sum();
        if total == 0 {
            return Micros::ZERO;
        }
        let mut us = self.prefix_beta_us + self.prefix_alpha_us * f64::from(total);
        for &b in sub_batches {
            if b > 0 {
                us += self.suffix_beta_us + self.suffix_alpha_us * f64::from(b);
            }
        }
        Micros::from_micros(us.round() as u64)
    }

    /// A batching profile for the *combined* prefix-batched execution with
    /// `variants` equally-loaded variants: entry `b` is the latency of
    /// executing `b` total inputs spread evenly over the variants.
    ///
    /// This is what the squishy scheduler consumes for a prefix-merged
    /// session (§5: "Combine two or more models that share a prefix and
    /// latency SLO into a new prefix-batched model").
    pub fn merged_profile(&self, variants: u32, max_batch: u32) -> BatchingProfile {
        assert!(variants >= 1);
        let mut lat = Vec::with_capacity(max_batch as usize);
        for b in 1..=max_batch {
            // Spread b inputs over the variants as evenly as possible.
            let per = b / variants;
            let extra = b % variants;
            let mut subs = Vec::with_capacity(variants as usize);
            for v in 0..variants {
                let s = per + u32::from(v < extra);
                if s > 0 {
                    subs.push(s);
                }
            }
            lat.push(self.batch_latency(&subs));
        }
        nexus_profile::repair_table(&mut lat);
        BatchingProfile::new(lat)
            .expect("merged prefix profile is valid")
            .with_memory_bytes(self.memory_for_variants(variants as usize))
    }

    /// Resident GPU memory for the prefix plus `variants` suffixes.
    pub fn memory_for_variants(&self, variants: usize) -> u64 {
        self.prefix_memory_bytes + self.suffix_memory_bytes * variants as u64
    }
}

/// Memory needed to host `variants` copies of the full model *without*
/// prefix batching (each variant fully resident), for the Fig. 15(b)
/// comparison.
pub fn unshared_memory(base: &ModelSchema, variants: usize) -> u64 {
    let full = base.total_param_bytes() + base.total_param_bytes() / 5 + WORKSPACE_BYTES;
    full * variants as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use nexus_profile::catalog::RESNET50;

    fn base_and_variants(n: usize) -> Vec<ModelSchema> {
        let base = zoo::resnet50();
        let mut out = vec![base.clone()];
        for v in 1..n {
            out.push(base.specialize(format!("resnet50-v{v}"), 1, v as u64));
        }
        out
    }

    #[test]
    fn groups_variants_at_deepest_shared_prefix() {
        let models = base_and_variants(4);
        let refs: Vec<&ModelSchema> = models.iter().collect();
        let groups = find_prefix_groups(&refs);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.members.len(), 4);
        assert_eq!(g.prefix_len, models[0].num_layers() - 1);
    }

    #[test]
    fn unrelated_models_form_no_group() {
        let a = zoo::resnet50();
        let b = zoo::inception4();
        let groups = find_prefix_groups(&[&a, &b]);
        assert!(groups.is_empty());
    }

    #[test]
    fn mixed_population_groups_only_relatives() {
        let base = zoo::resnet50();
        let v1 = base.specialize("v1", 1, 1);
        let v2 = base.specialize("v2", 1, 2);
        let loner = zoo::darknet53();
        let groups = find_prefix_groups(&[&base, &loner, &v1, &v2]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![0, 2, 3]);
    }

    #[test]
    fn deeper_groups_win_over_shallow() {
        let base = zoo::resnet50();
        // v1/v2 retrain 1 layer (share len n-1); v3 retrains 3 layers
        // (shares only len n-3 with the others).
        let v1 = base.specialize("v1", 1, 1);
        let v2 = base.specialize("v2", 1, 2);
        let v3 = base.specialize("v3", 3, 3);
        let n = base.num_layers();
        let groups = find_prefix_groups(&[&v1, &v2, &v3]);
        // v1+v2 group at depth n-1; v3 is left alone (its depth-(n-3) match
        // is already consumed).
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].prefix_len, n - 1);
        assert_eq!(groups[0].members, vec![0, 1]);
    }

    #[test]
    fn prefix_plan_latency_splits_compute() {
        let base = zoo::resnet50();
        let profile = RESNET50.profile_1080ti();
        let n = base.num_layers();
        let plan = PrefixPlan::new(&base, &profile, n - 1);
        // One variant at batch b costs about the same as the full model.
        let full = profile.latency(8);
        let split = plan.batch_latency(&[8]);
        let rel =
            (split.as_micros() as f64 - full.as_micros() as f64).abs() / full.as_micros() as f64;
        assert!(
            rel < 0.05,
            "single-variant prefix execution should cost about the full model"
        );
    }

    #[test]
    fn prefix_batching_beats_separate_small_batches() {
        // 4 variants with 8 inputs each: one prefix batch of 32 vs four
        // separate batches of 8.
        let base = zoo::resnet50();
        let profile = RESNET50.profile_1080ti();
        let n = base.num_layers();
        let plan = PrefixPlan::new(&base, &profile, n - 1);
        let shared = plan.batch_latency(&[8, 8, 8, 8]);
        let separate = profile.latency(8) * 4;
        assert!(
            shared < separate,
            "prefix batching {shared} should beat separate {separate}"
        );
    }

    #[test]
    fn merged_profile_is_valid_and_batchier() {
        let base = zoo::resnet50();
        let profile = RESNET50.profile_1080ti();
        let n = base.num_layers();
        let plan = PrefixPlan::new(&base, &profile, n - 1);
        let merged = plan.merged_profile(4, 32);
        assert_eq!(merged.max_batch(), 32);
        // Throughput at batch 32 spread over 4 variants still beats four
        // separate batch-8 executions.
        let merged_tp = merged.throughput(32);
        let separate_tp = 32.0 / (profile.latency(8) * 4).as_secs_f64();
        assert!(merged_tp > separate_tp);
    }

    #[test]
    fn memory_scales_with_suffix_only() {
        let base = zoo::resnet50();
        let profile = RESNET50.profile_1080ti();
        let n = base.num_layers();
        let plan = PrefixPlan::new(&base, &profile, n - 1);
        let m2 = plan.memory_for_variants(2);
        let m10 = plan.memory_for_variants(10);
        let growth = (m10 - m2) as f64 / m2 as f64;
        assert!(
            growth < 0.25,
            "adding 8 one-layer variants grew memory {growth:.2}"
        );
        // Without sharing, memory grows 5× from 2 to 10 variants.
        assert_eq!(unshared_memory(&base, 10), unshared_memory(&base, 2) * 5);
    }
}
