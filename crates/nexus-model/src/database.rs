//! The management-plane model database.
//!
//! §5: "Models are stored in a model database and may be accompanied by
//! either a sample data set or a batching profile." On ingest, the database
//! fingerprints every prefix of the schema and records which earlier models
//! it shares prefixes with — the information the epoch scheduler uses to
//! form prefix-batched sessions.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use nexus_profile::BatchingProfile;

use crate::prefix::{find_prefix_groups, PrefixGroup};
use crate::schema::ModelSchema;

/// Opaque identifier of a model in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModelId(pub u32);

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A model as stored in the database: schema plus measured batching profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredModel {
    /// Database identifier.
    pub id: ModelId,
    /// The layer schema.
    pub schema: ModelSchema,
    /// Batching profile on the cluster's GPU type.
    pub profile: BatchingProfile,
}

/// Errors from database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatabaseError {
    /// A model with the same name is already ingested.
    DuplicateName(String),
    /// The referenced model id does not exist.
    UnknownModel(ModelId),
}

impl std::fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatabaseError::DuplicateName(name) => {
                write!(f, "model named {name:?} already ingested")
            }
            DatabaseError::UnknownModel(id) => write!(f, "unknown model {id}"),
        }
    }
}

impl std::error::Error for DatabaseError {}

/// The model database.
#[derive(Debug, Clone, Default)]
pub struct ModelDatabase {
    models: Vec<StoredModel>,
    by_name: HashMap<String, ModelId>,
}

impl ModelDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        ModelDatabase::default()
    }

    /// Ingests a model with its batching profile, returning its id.
    ///
    /// Mirrors the paper's upload path: the profile either accompanied the
    /// model or was produced by the profiler beforehand.
    pub fn ingest(
        &mut self,
        schema: ModelSchema,
        profile: BatchingProfile,
    ) -> Result<ModelId, DatabaseError> {
        if self.by_name.contains_key(schema.name()) {
            return Err(DatabaseError::DuplicateName(schema.name().to_string()));
        }
        let id = ModelId(self.models.len() as u32);
        self.by_name.insert(schema.name().to_string(), id);
        self.models.push(StoredModel {
            id,
            schema,
            profile,
        });
        Ok(id)
    }

    /// Ingests a new *version* of an existing model name (the versioning
    /// machinery §3 credits TensorFlow Serving with): the name now resolves
    /// to the new id, while the old version stays resident for sessions
    /// still pinned to its [`ModelId`].
    pub fn ingest_version(
        &mut self,
        schema: ModelSchema,
        profile: BatchingProfile,
    ) -> Result<ModelId, DatabaseError> {
        let name = schema.name().to_string();
        let id = ModelId(self.models.len() as u32);
        self.models.push(StoredModel {
            id,
            schema,
            profile,
        });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// All ids that ever carried `name`, oldest first.
    pub fn versions_of(&self, name: &str) -> Vec<ModelId> {
        self.models
            .iter()
            .filter(|m| m.schema.name() == name)
            .map(|m| m.id)
            .collect()
    }

    /// Number of ingested models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Looks up a model by id.
    pub fn get(&self, id: ModelId) -> Result<&StoredModel, DatabaseError> {
        self.models
            .get(id.0 as usize)
            .ok_or(DatabaseError::UnknownModel(id))
    }

    /// Looks up a model by name.
    pub fn get_by_name(&self, name: &str) -> Option<&StoredModel> {
        self.by_name
            .get(name)
            .map(|&id| &self.models[id.0 as usize])
    }

    /// All stored models.
    pub fn models(&self) -> &[StoredModel] {
        &self.models
    }

    /// Finds prefix groups among an arbitrary subset of stored models.
    ///
    /// Group member indices are translated back to [`ModelId`]s.
    pub fn prefix_groups_among(
        &self,
        ids: &[ModelId],
    ) -> Result<Vec<(PrefixGroup, Vec<ModelId>)>, DatabaseError> {
        let mut schemas = Vec::with_capacity(ids.len());
        for &id in ids {
            schemas.push(&self.get(id)?.schema);
        }
        Ok(find_prefix_groups(&schemas)
            .into_iter()
            .map(|g| {
                let members = g.members.iter().map(|&i| ids[i]).collect();
                (g, members)
            })
            .collect())
    }

    /// Finds prefix groups among all stored models.
    pub fn prefix_groups(&self) -> Vec<(PrefixGroup, Vec<ModelId>)> {
        let ids: Vec<ModelId> = self.models.iter().map(|m| m.id).collect();
        self.prefix_groups_among(&ids).expect("ids are all valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use nexus_profile::catalog::{LENET5, RESNET50};

    fn db_with_variants() -> (ModelDatabase, Vec<ModelId>) {
        let mut db = ModelDatabase::new();
        let base = zoo::resnet50();
        let profile = RESNET50.profile_1080ti();
        let mut ids = vec![db.ingest(base.clone(), profile.clone()).unwrap()];
        for v in 1..=3 {
            let schema = base.specialize(format!("resnet50-game{v}"), 1, v);
            ids.push(db.ingest(schema, profile.clone()).unwrap());
        }
        (db, ids)
    }

    #[test]
    fn ingest_assigns_sequential_ids_and_name_lookup() {
        let (db, ids) = db_with_variants();
        assert_eq!(db.len(), 4);
        assert_eq!(ids, vec![ModelId(0), ModelId(1), ModelId(2), ModelId(3)]);
        assert_eq!(db.get_by_name("resnet50-game2").unwrap().id, ModelId(2));
        assert!(db.get_by_name("missing").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut db = ModelDatabase::new();
        let schema = zoo::lenet5();
        let profile = LENET5.profile_1080ti();
        db.ingest(schema.clone(), profile.clone()).unwrap();
        let err = db.ingest(schema, profile).unwrap_err();
        assert_eq!(err, DatabaseError::DuplicateName("lenet5".into()));
    }

    #[test]
    fn unknown_id_is_an_error() {
        let db = ModelDatabase::new();
        assert_eq!(
            db.get(ModelId(5)).unwrap_err(),
            DatabaseError::UnknownModel(ModelId(5))
        );
    }

    #[test]
    fn versioning_updates_name_resolution_keeping_old_ids() {
        let mut db = ModelDatabase::new();
        let base = zoo::resnet50();
        let profile = RESNET50.profile_1080ti();
        let v1 = db.ingest(base.clone(), profile.clone()).unwrap();
        // A retrained deployment of the same name.
        let retrained = base.specialize("tmp", 1, 42);
        let mut layers = retrained.layers().to_vec();
        let renamed = crate::schema::ModelSchema::new("resnet50", std::mem::take(&mut layers));
        let v2 = db.ingest_version(renamed, profile).unwrap();
        assert_ne!(v1, v2);
        // The name resolves to the latest version.
        assert_eq!(db.get_by_name("resnet50").unwrap().id, v2);
        // The old version remains addressable.
        assert!(db.get(v1).is_ok());
        assert_eq!(db.versions_of("resnet50"), vec![v1, v2]);
    }

    #[test]
    fn prefix_groups_found_on_whole_database() {
        let (mut db, _) = db_with_variants();
        // An unrelated model must not join the group.
        db.ingest(
            zoo::darknet53(),
            nexus_profile::catalog::DARKNET53.profile_1080ti(),
        )
        .unwrap();
        let groups = db.prefix_groups();
        assert_eq!(groups.len(), 1);
        let (group, members) = &groups[0];
        assert_eq!(members.len(), 4);
        assert_eq!(
            group.prefix_len,
            db.get(ModelId(0)).unwrap().schema.num_layers() - 1
        );
    }

    #[test]
    fn prefix_groups_among_subset() {
        let (db, ids) = db_with_variants();
        // Only two of the variants: still a group of 2.
        let groups = db.prefix_groups_among(&ids[1..3]).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1, vec![ids[1], ids[2]]);
    }
}
