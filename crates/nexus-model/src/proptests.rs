//! Property-based tests for schema hashing and prefix detection.

#![cfg(test)]

use proptest::prelude::*;

use crate::layer::{Layer, LayerKind};
use crate::prefix::find_prefix_groups;
use crate::schema::ModelSchema;

fn arb_layer(seed: u32) -> Layer {
    // Deterministic layer variety from a seed.
    let kind = match seed % 5 {
        0 => LayerKind::Conv {
            out_channels: 16 + seed % 64,
            kernel: 1 + seed % 5,
            stride: 1 + seed % 2,
        },
        1 => LayerKind::Fc {
            out_features: 10 + seed % 1000,
        },
        2 => LayerKind::Pool {
            window: 2 + seed % 3,
        },
        3 => LayerKind::ResidualBlock {
            out_channels: 32 + seed % 512,
        },
        _ => LayerKind::Softmax {
            classes: 2 + seed % 100,
        },
    };
    Layer::new(
        kind,
        u64::from(seed % 997) * 1_000,
        f64::from(seed % 97) / 10.0,
    )
}

fn arb_schema() -> impl Strategy<Value = ModelSchema> {
    prop::collection::vec(0u32..10_000, 2..12).prop_map(|seeds| {
        let layers = seeds.into_iter().map(arb_layer).collect();
        ModelSchema::new("m", layers)
    })
}

proptest! {
    /// Prefix hashes agree exactly up to the common prefix and disagree
    /// beyond it, for any schema and any specialization depth.
    #[test]
    fn specialization_prefix_boundary(
        schema in arb_schema(),
        retrain in 1usize..6,
        version in 1u64..1_000,
    ) {
        prop_assume!(retrain < schema.num_layers());
        let variant = schema.specialize("v", retrain, version);
        let shared = schema.num_layers() - retrain;
        prop_assert_eq!(schema.common_prefix_len(&variant), shared);
        for len in 1..=shared {
            prop_assert_eq!(schema.prefix_hash(len), variant.prefix_hash(len));
        }
        for len in shared + 1..=schema.num_layers() {
            prop_assert_ne!(schema.prefix_hash(len), variant.prefix_hash(len));
        }
    }

    /// `common_prefix_len` is symmetric and bounded by both lengths.
    #[test]
    fn common_prefix_symmetric(a in arb_schema(), b in arb_schema()) {
        let ab = a.common_prefix_len(&b);
        prop_assert_eq!(ab, b.common_prefix_len(&a));
        prop_assert!(ab <= a.num_layers().min(b.num_layers()));
    }

    /// Parameter and FLOP accounting splits always add up, at every depth.
    #[test]
    fn accounting_partitions(schema in arb_schema()) {
        for len in 0..=schema.num_layers() {
            prop_assert_eq!(
                schema.prefix_param_bytes(len) + schema.suffix_param_bytes(len),
                schema.total_param_bytes()
            );
            let f = schema.prefix_gflops(len) + schema.suffix_gflops(len);
            prop_assert!((f - schema.total_gflops()).abs() < 1e-9);
        }
    }

    /// Prefix grouping is sound: every reported group's members genuinely
    /// share a prefix of the reported depth, an unrelated schema never
    /// joins relatives, and each model lands in at most one group.
    #[test]
    fn grouping_is_sound(
        schema in arb_schema(),
        versions in prop::collection::vec(1u64..500, 1..6),
        unrelated in arb_schema(),
    ) {
        prop_assume!(schema.num_layers() >= 3);
        prop_assume!(schema.common_prefix_len(&unrelated) == 0);
        let variants: Vec<ModelSchema> = versions
            .iter()
            .map(|&v| schema.specialize(format!("v{v}"), 1, v))
            .collect();
        let mut all: Vec<&ModelSchema> = vec![&schema, &unrelated];
        all.extend(variants.iter());
        let groups = find_prefix_groups(&all);
        // Relatives exist, so at least one group forms.
        prop_assert!(!groups.is_empty());
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            prop_assert!(g.members.len() >= 2);
            for &m in &g.members {
                prop_assert!(seen.insert(m), "model {m} in two groups");
                prop_assert!(m != 1, "unrelated schema grouped");
                prop_assert!(all[m].num_layers() >= g.prefix_len);
                prop_assert_eq!(all[m].prefix_hash(g.prefix_len), g.prefix_hash);
            }
            // Pairwise shared prefixes are at least the group depth.
            for i in 0..g.members.len() {
                for j in i + 1..g.members.len() {
                    prop_assert!(
                        all[g.members[i]].common_prefix_len(all[g.members[j]])
                            >= g.prefix_len
                    );
                }
            }
        }
    }
}
