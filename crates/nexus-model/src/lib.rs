//! Model schemas, prefix detection, and the model database for the Nexus
//! reproduction.
//!
//! This crate is the management plane's view of models: typed layer chains
//! with stable fingerprints ([`schema::ModelSchema`]), transfer-learning
//! specialization, prefix-group detection and the prefix-batched execution
//! cost model ([`prefix`]), and the model database (§5) that ties schemas to
//! measured batching profiles.

pub mod database;
pub mod hashfn;
pub mod layer;
pub mod prefix;
pub mod schema;
pub mod zoo;

#[cfg(test)]
mod proptests;

pub use database::{DatabaseError, ModelDatabase, ModelId, StoredModel};
pub use layer::{Layer, LayerKind};
pub use prefix::{find_prefix_groups, unshared_memory, PrefixGroup, PrefixPlan};
pub use schema::ModelSchema;
