//! Model schemas: named layer chains with rolling prefix hashes.
//!
//! §6.3: "Nexus computes the hash of every sub-tree of the model schema and
//! compares it with the existing models in the database to identify common
//! sub-trees when a model is uploaded." For the (overwhelmingly common)
//! chain-structured networks the catalog contains, the root-anchored
//! sub-trees are exactly the layer prefixes, so the schema maintains a
//! rolling hash per prefix length and common-prefix detection is a hash
//! comparison per depth.

use serde::{Deserialize, Serialize};

use crate::hashfn::Fnv1a;
use crate::layer::Layer;

/// A named, ordered chain of layers with precomputed prefix fingerprints.
///
/// # Examples
///
/// ```
/// use nexus_model::zoo;
///
/// let base = zoo::resnet50();
/// let variant = base.specialize("resnet50-icons", 1, 7);
/// // Specializing only the output layer leaves all but one layer shared.
/// assert_eq!(base.common_prefix_len(&variant), base.num_layers() - 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSchema {
    name: String,
    layers: Vec<Layer>,
    /// `prefix_hashes[i]` fingerprints `layers[0..=i]` (structure+weights).
    prefix_hashes: Vec<u64>,
}

impl ModelSchema {
    /// Creates a schema from a layer chain.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        let mut prefix_hashes = Vec::with_capacity(layers.len());
        let mut hasher = Fnv1a::new();
        for layer in &layers {
            layer.hash_identity(&mut hasher);
            prefix_hashes.push(hasher.finish());
        }
        ModelSchema {
            name: name.into(),
            layers,
            prefix_hashes,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The layer chain.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Fingerprint of the first `len` layers.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds the layer count.
    pub fn prefix_hash(&self, len: usize) -> u64 {
        assert!(
            len >= 1 && len <= self.layers.len(),
            "prefix length {len} out of range 1..={}",
            self.layers.len()
        );
        self.prefix_hashes[len - 1]
    }

    /// Fingerprint of the whole model (structure and weights).
    pub fn full_hash(&self) -> u64 {
        self.prefix_hashes[self.layers.len() - 1]
    }

    /// Length of the longest shared prefix with `other`, in layers.
    ///
    /// Zero means the models share nothing and cannot prefix-batch.
    pub fn common_prefix_len(&self, other: &ModelSchema) -> usize {
        let upper = self.layers.len().min(other.layers.len());
        // Rolling hashes are monotone: if prefixes of length k differ, all
        // longer prefixes differ, so binary search the boundary.
        let (mut lo, mut hi) = (0usize, upper + 1);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.prefix_hashes[mid - 1] == other.prefix_hashes[mid - 1] {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Total weight bytes.
    pub fn total_param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes).sum()
    }

    /// Total forward compute per input, in GFLOPs.
    pub fn total_gflops(&self) -> f64 {
        self.layers.iter().map(|l| l.gflops).sum()
    }

    /// Weight bytes in the first `len` layers.
    pub fn prefix_param_bytes(&self, len: usize) -> u64 {
        self.layers[..len].iter().map(|l| l.param_bytes).sum()
    }

    /// Weight bytes in the layers after the first `len`.
    pub fn suffix_param_bytes(&self, len: usize) -> u64 {
        self.layers[len..].iter().map(|l| l.param_bytes).sum()
    }

    /// GFLOPs in the first `len` layers.
    pub fn prefix_gflops(&self, len: usize) -> f64 {
        self.layers[..len].iter().map(|l| l.gflops).sum()
    }

    /// GFLOPs in the layers after the first `len`.
    pub fn suffix_gflops(&self, len: usize) -> f64 {
        self.layers[len..].iter().map(|l| l.gflops).sum()
    }

    /// Fraction of total compute in the first `len` layers (0 when the model
    /// has no compute at all).
    pub fn prefix_flops_fraction(&self, len: usize) -> f64 {
        let total = self.total_gflops();
        if total == 0.0 {
            0.0
        } else {
            self.prefix_gflops(len) / total
        }
    }

    /// Produces a transfer-learned variant: the last `retrain_layers` layers
    /// get fresh weights (`param_version`), everything before is shared
    /// byte-for-byte with `self`.
    ///
    /// This is the §2.2 specialization pattern: "altering ('re-training')
    /// just the output layers of the models".
    ///
    /// # Panics
    ///
    /// Panics if `retrain_layers` is zero or not smaller than the layer
    /// count (a fully retrained model shares nothing and should be built
    /// with [`ModelSchema::new`]).
    pub fn specialize(
        &self,
        new_name: impl Into<String>,
        retrain_layers: usize,
        param_version: u64,
    ) -> ModelSchema {
        assert!(
            retrain_layers >= 1 && retrain_layers < self.layers.len(),
            "retrain_layers must be in 1..{}",
            self.layers.len()
        );
        assert!(param_version != 0, "version 0 is reserved for base weights");
        let split = self.layers.len() - retrain_layers;
        let mut layers = self.layers.clone();
        for layer in &mut layers[split..] {
            layer.param_version = param_version;
        }
        ModelSchema::new(new_name, layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    fn toy_schema(name: &str) -> ModelSchema {
        ModelSchema::new(
            name,
            vec![
                Layer::new(
                    LayerKind::Input {
                        channels: 3,
                        height: 224,
                        width: 224,
                    },
                    0,
                    0.0,
                ),
                Layer::new(
                    LayerKind::Conv {
                        out_channels: 64,
                        kernel: 7,
                        stride: 2,
                    },
                    1_000_000,
                    1.0,
                ),
                Layer::new(LayerKind::Fc { out_features: 100 }, 400_000, 0.5),
                Layer::new(LayerKind::Softmax { classes: 100 }, 0, 0.01),
            ],
        )
    }

    #[test]
    fn identical_schemas_share_everything() {
        let a = toy_schema("a");
        let b = toy_schema("b");
        assert_eq!(a.full_hash(), b.full_hash());
        assert_eq!(a.common_prefix_len(&b), 4);
    }

    #[test]
    fn specialization_shares_all_but_retrained_layers() {
        let base = toy_schema("base");
        let spec1 = base.specialize("spec1", 2, 1);
        assert_eq!(base.common_prefix_len(&spec1), 2);
        let spec2 = base.specialize("spec2", 1, 2);
        assert_eq!(base.common_prefix_len(&spec2), 3);
        // Two different specializations share the base prefix with each
        // other too.
        assert_eq!(spec1.common_prefix_len(&spec2), 2);
    }

    #[test]
    fn same_version_specializations_are_identical() {
        let base = toy_schema("base");
        let a = base.specialize("a", 1, 9);
        let b = base.specialize("b", 1, 9);
        assert_eq!(a.common_prefix_len(&b), 4);
    }

    #[test]
    fn accounting_splits_add_up() {
        let s = toy_schema("m");
        for len in 0..=s.num_layers() {
            assert_eq!(
                s.prefix_param_bytes(len) + s.suffix_param_bytes(len),
                s.total_param_bytes()
            );
            let f = s.prefix_gflops(len) + s.suffix_gflops(len);
            assert!((f - s.total_gflops()).abs() < 1e-12);
        }
        assert!((s.prefix_flops_fraction(4) - 1.0).abs() < 1e-12);
        assert_eq!(s.prefix_flops_fraction(0), 0.0);
    }

    #[test]
    fn prefix_hashes_are_monotone_fingerprints() {
        let base = toy_schema("base");
        let variant = base.specialize("v", 1, 3);
        let shared = base.common_prefix_len(&variant);
        for len in 1..=shared {
            assert_eq!(base.prefix_hash(len), variant.prefix_hash(len));
        }
        for len in shared + 1..=base.num_layers() {
            assert_ne!(base.prefix_hash(len), variant.prefix_hash(len));
        }
    }

    #[test]
    #[should_panic(expected = "retrain_layers must be in")]
    fn cannot_retrain_entire_model() {
        let base = toy_schema("base");
        let _ = base.specialize("all", 4, 1);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_schema_rejected() {
        let _ = ModelSchema::new("empty", vec![]);
    }
}
