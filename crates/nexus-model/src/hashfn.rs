//! Stable 64-bit FNV-1a hashing for model-schema fingerprints.
//!
//! Prefix detection compares hashes across processes and runs (the model
//! database persists them), so the hash must be stable — `std`'s `Hasher`
//! randomizes per process and is unsuitable.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates a hasher at the offset basis.
    pub const fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Returns the current hash value.
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Hashes a byte slice in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn integer_writes_are_order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn u32_and_u64_do_not_collide_trivially() {
        let mut a = Fnv1a::new();
        a.write_u32(7);
        let mut b = Fnv1a::new();
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }
}
