//! Typed DNN layers with parameter and compute accounting.
//!
//! A layer is the schedulable unit the paper calls a kernel (§2.2). The
//! reproduction never executes real tensor math; what matters for Nexus is
//! each layer's *identity* (for prefix hashing), *parameter bytes* (GPU
//! memory, load time) and *FLOPs* (execution cost attribution between a
//! shared prefix and per-model suffixes).

use serde::{Deserialize, Serialize};

use crate::hashfn::Fnv1a;

/// The operator a layer computes.
///
/// Structural parameters are part of the schema identity: two `Conv` layers
/// with different channel counts can never be batched together.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Input placeholder with `[channels, height, width]` shape.
    Input {
        /// Input channels.
        channels: u32,
        /// Input height in pixels.
        height: u32,
        /// Input width in pixels.
        width: u32,
    },
    /// 2-D convolution.
    Conv {
        /// Output channels.
        out_channels: u32,
        /// Square kernel size.
        kernel: u32,
        /// Stride.
        stride: u32,
    },
    /// Fully-connected (dense) layer.
    Fc {
        /// Output features.
        out_features: u32,
    },
    /// Max/avg pooling.
    Pool {
        /// Square window size.
        window: u32,
    },
    /// A residual block (conv + shortcut), collapsed to one node.
    ResidualBlock {
        /// Output channels.
        out_channels: u32,
    },
    /// An inception-style multi-branch block, collapsed to one node.
    InceptionBlock {
        /// Total output channels across branches.
        out_channels: u32,
    },
    /// Detection head (anchor generation + box regression).
    DetectionHead {
        /// Number of object classes.
        classes: u32,
    },
    /// Classification softmax over `classes` outputs.
    Softmax {
        /// Number of classes.
        classes: u32,
    },
}

impl LayerKind {
    /// Short operator mnemonic used in schema display.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerKind::Input { .. } => "input",
            LayerKind::Conv { .. } => "conv",
            LayerKind::Fc { .. } => "fc",
            LayerKind::Pool { .. } => "pool",
            LayerKind::ResidualBlock { .. } => "res",
            LayerKind::InceptionBlock { .. } => "incep",
            LayerKind::DetectionHead { .. } => "det",
            LayerKind::Softmax { .. } => "softmax",
        }
    }

    /// Feeds the structural identity of the operator into `hasher`.
    pub fn hash_structure(&self, hasher: &mut Fnv1a) {
        match *self {
            LayerKind::Input {
                channels,
                height,
                width,
            } => {
                hasher.write(b"input");
                hasher.write_u32(channels);
                hasher.write_u32(height);
                hasher.write_u32(width);
            }
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
            } => {
                hasher.write(b"conv");
                hasher.write_u32(out_channels);
                hasher.write_u32(kernel);
                hasher.write_u32(stride);
            }
            LayerKind::Fc { out_features } => {
                hasher.write(b"fc");
                hasher.write_u32(out_features);
            }
            LayerKind::Pool { window } => {
                hasher.write(b"pool");
                hasher.write_u32(window);
            }
            LayerKind::ResidualBlock { out_channels } => {
                hasher.write(b"res");
                hasher.write_u32(out_channels);
            }
            LayerKind::InceptionBlock { out_channels } => {
                hasher.write(b"incep");
                hasher.write_u32(out_channels);
            }
            LayerKind::DetectionHead { classes } => {
                hasher.write(b"det");
                hasher.write_u32(classes);
            }
            LayerKind::Softmax { classes } => {
                hasher.write(b"softmax");
                hasher.write_u32(classes);
            }
        }
    }
}

/// One layer of a model schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// The operator.
    pub kind: LayerKind,
    /// Weight bytes held by this layer.
    pub param_bytes: u64,
    /// Forward-pass compute per input, in GFLOPs.
    pub gflops: f64,
    /// Identity of the layer's trained weights. Transfer learning re-trains
    /// a layer: same structure, new `param_version` — such layers can NOT be
    /// batched together.
    pub param_version: u64,
}

impl Layer {
    /// Creates a layer with version-0 (base training) weights.
    pub fn new(kind: LayerKind, param_bytes: u64, gflops: f64) -> Self {
        Layer {
            kind,
            param_bytes,
            gflops,
            param_version: 0,
        }
    }

    /// Feeds the full identity (structure + weights) into `hasher`.
    ///
    /// Two layers hash equal iff they can execute as one batched kernel:
    /// identical operator, shape, weight footprint, and trained weights.
    /// Parameter bytes and FLOPs stand in for the weight tensor contents,
    /// which this reproduction does not materialize.
    pub fn hash_identity(&self, hasher: &mut Fnv1a) {
        self.kind.hash_structure(hasher);
        hasher.write_u64(self.param_bytes);
        hasher.write_u64(self.gflops.to_bits());
        hasher.write_u64(self.param_version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(layer: &Layer) -> u64 {
        let mut h = Fnv1a::new();
        layer.hash_identity(&mut h);
        h.finish()
    }

    #[test]
    fn identical_layers_hash_equal() {
        let a = Layer::new(LayerKind::Fc { out_features: 10 }, 4_000, 0.001);
        let b = Layer::new(LayerKind::Fc { out_features: 10 }, 4_000, 0.001);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn different_shapes_hash_differently() {
        let a = Layer::new(LayerKind::Fc { out_features: 10 }, 4_000, 0.001);
        let b = Layer::new(LayerKind::Fc { out_features: 11 }, 4_000, 0.001);
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn retrained_weights_hash_differently() {
        let a = Layer::new(LayerKind::Fc { out_features: 10 }, 4_000, 0.001);
        let mut b = a.clone();
        b.param_version = 1;
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn operator_kinds_are_distinguished() {
        let conv = Layer::new(
            LayerKind::Conv {
                out_channels: 8,
                kernel: 3,
                stride: 1,
            },
            1_000,
            0.01,
        );
        let pool = Layer::new(LayerKind::Pool { window: 3 }, 0, 0.0);
        assert_ne!(hash_of(&conv), hash_of(&pool));
        assert_eq!(conv.kind.mnemonic(), "conv");
        assert_eq!(pool.kind.mnemonic(), "pool");
    }
}
