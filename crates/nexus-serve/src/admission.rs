//! Edge admission: drop doomed or unservable work *before* it queues.
//!
//! Two independent checks run at the frontend door, in order:
//!
//! 1. **Doomed-request drop** (§5.2): a request whose deadline cannot be
//!    met even if it started executing immediately — `deadline < now +
//!    ℓ(1)` — is dead on arrival. Admitting it wastes a queue slot and a
//!    backend dispatch on work that will be thrown away.
//! 2. **Analytic overload gate**: a closed-form dynamic-batching queue
//!    model (after Inoue's M/D/1-style analysis) predicts the p99 latency
//!    at the observed arrival rate. If the prediction exceeds the SLO,
//!    the gate computes the highest sustainable rate λ* and thins
//!    arrivals to it deterministically — shedding the excess at the door
//!    with a typed cause instead of letting every queued request blow its
//!    deadline together.
//!
//! The predicted p99 at arrival rate λ for a session batching up to `b`
//! items of batched service time ℓ(b). Dynamic batching takes whatever
//! has queued (capped at b) when the GPU frees up, so an arrival waits
//! for the residual of the in-progress batch plus the queue ahead of it:
//!
//! ```text
//! ρ   = λ·ℓ(b)/b                      (utilization; ≥ 1 ⇒ unstable)
//! W   = ρ·ℓ(b)/2 + ρ·ℓ(b)/(2(1−ρ))   (residual batch + queueing delay)
//! p99 ≈ W·ln(100) + ℓ(b)
//! ```
//!
//! The tail factor `ln 100` comes from the exponential tail of the
//! waiting time; the service term ℓ(b) is deterministic and gets no tail
//! inflation. W is strictly increasing in ρ, which is what makes the
//! bisection for λ* sound.

use nexus_profile::Micros;
use nexus_runtime::DropCause;

/// What the frontend needs to know about one session to admit for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSlo {
    /// End-to-end deadline budget.
    pub slo: Micros,
    /// Smallest-feasible-rung execution latency — the ladder floor for a
    /// doomed check. Equals ℓ(1) while execution ladders keep a bottom
    /// rung of one; a profile whose smallest compiled shape is larger
    /// tightens the test accordingly.
    pub ell_min: Micros,
    /// Batched execution latency ℓ(b) at the planned batch size.
    pub ell_b: Micros,
    /// Planned batch size b.
    pub batch: u32,
}

/// Admission verdict for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Admit and dispatch.
    Admit,
    /// Dead on arrival: the deadline is unmeetable even unqueued.
    DropDoomed,
    /// The overload gate shed it to keep admitted requests inside SLO.
    DropOverload,
}

impl Decision {
    /// The typed cause a dropped arrival is reported with.
    pub fn drop_cause(self) -> Option<DropCause> {
        match self {
            Decision::Admit => None,
            Decision::DropDoomed => Some(DropCause::Expired),
            Decision::DropOverload => Some(DropCause::AdmissionRejected),
        }
    }
}

/// Predicted p99 latency (µs) at arrival rate `lambda` (requests/µs).
/// `f64::INFINITY` when the queue is unstable at that rate.
pub fn predicted_p99_us(slo: &SessionSlo, lambda: f64) -> f64 {
    let ell_b = slo.ell_b.as_micros() as f64;
    let b = f64::from(slo.batch.max(1));
    if lambda <= 0.0 {
        return ell_b;
    }
    let rho = lambda * ell_b / b;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    let residual = rho * ell_b / 2.0;
    let queueing = rho * ell_b / (2.0 * (1.0 - rho));
    (residual + queueing) * 100f64.ln() + ell_b
}

/// Highest arrival rate (requests/µs) whose predicted p99 fits the SLO,
/// found by bisection — `predicted_p99_us` is strictly increasing in λ,
/// so the feasible rates are exactly `[0, λ*]`.
pub fn max_sustainable_rate(slo: &SessionSlo) -> f64 {
    let slo_us = slo.slo.as_micros() as f64;
    let ell_b = slo.ell_b.as_micros() as f64;
    if ell_b >= slo_us {
        // Even an empty system blows the SLO; nothing is sustainable.
        return 0.0;
    }
    // The stability ceiling: ρ < 1 ⇔ λ < b/ℓ(b).
    let mut hi = f64::from(slo.batch.max(1)) / ell_b;
    if predicted_p99_us(slo, hi * (1.0 - 1e-9)) <= slo_us {
        return hi;
    }
    let mut lo = 0.0f64;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if predicted_p99_us(slo, mid) <= slo_us {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Per-session admission state: an EWMA arrival-rate estimate and a
/// deterministic thinning accumulator.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    slo: SessionSlo,
    /// λ* from the analytic model, requests/µs.
    sustainable: f64,
    /// EWMA of the arrival rate, requests/µs. 0 until two arrivals seen.
    rate: f64,
    last_arrival: Option<Micros>,
    /// Thinning credit: each arrival earns `λ*/λ`; admission spends 1.
    credit: f64,
    admitted: u64,
    doomed: u64,
    shed: u64,
}

/// EWMA weight for each new inter-arrival sample. Small enough to ride
/// out single-packet jitter, large enough to track a rate step within a
/// few tens of arrivals.
const RATE_ALPHA: f64 = 0.05;

impl AdmissionGate {
    /// A gate for one session.
    pub fn new(slo: SessionSlo) -> Self {
        let sustainable = max_sustainable_rate(&slo);
        AdmissionGate {
            slo,
            sustainable,
            rate: 0.0,
            last_arrival: None,
            credit: 0.0,
            admitted: 0,
            doomed: 0,
            shed: 0,
        }
    }

    /// The session parameters the gate was built from.
    pub fn slo(&self) -> SessionSlo {
        self.slo
    }

    /// λ* — the model's highest sustainable arrival rate, requests/µs.
    pub fn sustainable_rate(&self) -> f64 {
        self.sustainable
    }

    /// Current arrival-rate estimate, requests/µs.
    pub fn observed_rate(&self) -> f64 {
        self.rate
    }

    /// Counters: (admitted, dropped doomed, shed by the overload gate).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.admitted, self.doomed, self.shed)
    }

    /// Judges one arrival at `now` with absolute deadline `deadline`.
    pub fn admit(&mut self, now: Micros, deadline: Micros) -> Decision {
        // Rate estimate first: every arrival is load, even one we drop.
        if let Some(last) = self.last_arrival {
            let dt = now.saturating_sub(last).as_micros().max(1) as f64;
            self.rate = if self.rate == 0.0 {
                1.0 / dt
            } else {
                (1.0 - RATE_ALPHA) * self.rate + RATE_ALPHA / dt
            };
        }
        self.last_arrival = Some(now);

        // §5.2 doomed check against the execution floor.
        if deadline < now + self.slo.ell_min {
            self.doomed += 1;
            return Decision::DropDoomed;
        }

        // Overload gate: thin to λ* when the observed rate exceeds it.
        if self.rate > self.sustainable && self.sustainable > 0.0 {
            self.credit += self.sustainable / self.rate;
            if self.credit >= 1.0 {
                self.credit -= 1.0;
            } else {
                self.shed += 1;
                return Decision::DropOverload;
            }
        } else {
            // Under the limit: full credit, no debt carried forward.
            self.credit = self.credit.min(1.0);
        }
        self.admitted += 1;
        Decision::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo_100ms() -> SessionSlo {
        SessionSlo {
            slo: Micros::from_millis(100),
            ell_min: Micros::from_millis(10),
            ell_b: Micros::from_millis(40),
            batch: 8,
        }
    }

    #[test]
    fn the_model_is_monotonic_and_bounded_by_stability() {
        let slo = slo_100ms();
        let empty = predicted_p99_us(&slo, 0.0);
        assert_eq!(empty, 40_000.0, "empty system costs one batch");
        let lam_star = max_sustainable_rate(&slo);
        assert!(lam_star > 0.0);
        // Feasible at λ*, infeasible just above it.
        assert!(predicted_p99_us(&slo, lam_star * 0.999) <= 100_000.0);
        assert!(predicted_p99_us(&slo, lam_star * 1.05) > 100_000.0);
        // λ* respects the stability ceiling b/ℓ(b) = 8/40000 = 2e-4.
        assert!(lam_star <= 8.0 / 40_000.0 + 1e-12);
    }

    #[test]
    fn impossible_slos_admit_nothing_sustainably() {
        let slo = SessionSlo {
            slo: Micros::from_millis(10),
            ell_min: Micros::from_millis(10),
            ell_b: Micros::from_millis(40),
            batch: 8,
        };
        assert_eq!(max_sustainable_rate(&slo), 0.0);
    }

    #[test]
    fn doomed_requests_drop_at_the_door() {
        let mut gate = AdmissionGate::new(slo_100ms());
        let now = Micros::from_secs(1);
        // Deadline closer than ℓ(1): dead on arrival.
        let d = gate.admit(now, now + Micros::from_millis(5));
        assert_eq!(d, Decision::DropDoomed);
        assert_eq!(d.drop_cause(), Some(DropCause::Expired));
        // A healthy deadline at a polite arrival rate admits.
        let later = now + Micros::from_millis(50);
        let d = gate.admit(later, later + Micros::from_millis(100));
        assert_eq!(d, Decision::Admit);
        assert_eq!(d.drop_cause(), None);
    }

    #[test]
    fn overload_thins_to_the_sustainable_rate() {
        let slo = slo_100ms();
        let mut gate = AdmissionGate::new(slo);
        let lam_star = gate.sustainable_rate();
        // Arrivals at 4× the sustainable rate.
        let gap = Micros::from_micros((1.0 / (4.0 * lam_star)) as u64);
        let mut now = Micros::ZERO;
        let (mut admitted, mut shed) = (0u64, 0u64);
        for _ in 0..4000 {
            now += gap;
            match gate.admit(now, now + slo.slo) {
                Decision::Admit => admitted += 1,
                Decision::DropOverload => shed += 1,
                Decision::DropDoomed => unreachable!("deadline is healthy"),
            }
        }
        assert_eq!(
            Decision::DropOverload.drop_cause(),
            Some(DropCause::AdmissionRejected)
        );
        // Roughly one in four admitted once the EWMA converges.
        let frac = admitted as f64 / (admitted + shed) as f64;
        assert!(
            (0.2..=0.35).contains(&frac),
            "admitted fraction {frac} should approach 1/4"
        );
    }

    #[test]
    fn a_polite_arrival_rate_is_never_shed() {
        let slo = slo_100ms();
        let mut gate = AdmissionGate::new(slo);
        let lam_star = gate.sustainable_rate();
        let gap = Micros::from_micros((2.0 / lam_star) as u64); // half λ*
        let mut now = Micros::ZERO;
        for _ in 0..1000 {
            now += gap;
            assert_eq!(gate.admit(now, now + slo.slo), Decision::Admit);
        }
        let (admitted, doomed, shed) = gate.counters();
        assert_eq!((admitted, doomed, shed), (1000, 0, 0));
    }
}
