//! Command-line front-door soak: spawn a frontend and backends on
//! localhost, drive concurrent traffic, optionally kill a backend and
//! push a routing epoch mid-run, and judge the run by the chaos gate.
//!
//! Usage:
//!   cargo run --release -p nexus-serve --bin nexus-serve --
//!       [--backends N] [--clients N] [--requests N] [--sessions N]
//!       [--budget-ms N] [--pacing-ms N] [--kill IDX | --no-kill]
//!       [--no-epoch-push]
//!
//! Exits 0 when the gate passes, 1 when any clause is violated. This is
//! the exact harness the CI chaos step runs — see `ci.sh`.

use std::process::exit;
use std::time::Duration;

use nexus_profile::Micros;
use nexus_serve::frontend::cause_for_index;
use nexus_serve::{run_soak, SoakConfig};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}

fn parse_u64(it: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail(format!("{flag} needs a number")))
}

fn main() {
    let mut cfg = SoakConfig {
        backends: 4,
        clients: 200,
        requests_per_client: 25,
        sessions: 2,
        budget: Micros::from_millis(250),
        pacing: Duration::from_millis(5),
        kill_backend: Some(0),
        push_second_epoch: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--backends" => cfg.backends = parse_u64(&mut it, "--backends") as usize,
            "--clients" => cfg.clients = parse_u64(&mut it, "--clients") as usize,
            "--requests" => cfg.requests_per_client = parse_u64(&mut it, "--requests") as usize,
            "--sessions" => cfg.sessions = parse_u64(&mut it, "--sessions") as u32,
            "--budget-ms" => cfg.budget = Micros::from_millis(parse_u64(&mut it, "--budget-ms")),
            "--pacing-ms" => cfg.pacing = Duration::from_millis(parse_u64(&mut it, "--pacing-ms")),
            "--kill" => cfg.kill_backend = Some(parse_u64(&mut it, "--kill") as usize),
            "--no-kill" => cfg.kill_backend = None,
            "--no-epoch-push" => cfg.push_second_epoch = false,
            other => fail(format!("unknown argument {other:?}")),
        }
    }
    if let Some(k) = cfg.kill_backend {
        if k >= cfg.backends {
            fail(format!(
                "--kill {k} out of range for {} backends",
                cfg.backends
            ));
        }
        if cfg.backends < 2 {
            fail("killing a backend needs at least 2 so traffic can fail over");
        }
    }

    println!(
        "front-door soak: {} backends, {} clients x {} requests, {} session(s), \
         budget {} ms{}",
        cfg.backends,
        cfg.clients,
        cfg.requests_per_client,
        cfg.sessions,
        cfg.budget.as_millis_f64(),
        match cfg.kill_backend {
            Some(k) => format!(", killing backend {k} mid-run"),
            None => String::new(),
        }
    );

    let report = match run_soak(&cfg) {
        Ok(r) => r,
        Err(e) => fail(e),
    };

    let s = &report.stats;
    println!();
    println!("submitted         : {}", s.submitted);
    println!(
        "completed         : {} ({:.1}%)",
        s.completed,
        100.0 * s.completed as f64 / s.submitted.max(1) as f64
    );
    println!("retried           : {}", s.retried);
    for (i, &n) in s.drops.iter().enumerate() {
        if n > 0 {
            println!("dropped {:>17}: {n}", format!("{:?}", cause_for_index(i)));
        }
    }
    println!(
        "epochs            : pushed {:?}, applied {:?}",
        report.pushed_epochs, report.applied_epochs
    );
    println!(
        "probes            : {} sent, {} missed",
        s.probes_sent, s.probe_misses
    );
    println!(
        "threads joined    : {} frontend + {} backend handlers",
        report.frontend_handlers_joined, report.backend_handlers_joined
    );
    println!("budget violations : {}", s.budget_violations);

    match report.violation() {
        None => {
            println!("\nPASS: every request accounted, epochs intact, clean shutdown");
        }
        Some(v) => {
            println!("\nFAIL: {v}");
            exit(1);
        }
    }
}
