//! Health-checked backend registry.
//!
//! The frontend never consults raw heartbeat counters when routing; it
//! asks the registry, which wraps failure detection behind a small
//! liveness state machine per backend:
//!
//! ```text
//!            beat                    beat
//!   Healthy ◄──── Suspect ◄────┐   ┌─────► Rejoining ──── grace beats ──► Healthy
//!      │  miss ≥ suspect  ▲    │   │            │
//!      └──────────────────┘    │   │            │ miss
//!              Suspect ── miss ≥ dead ──► Dead ─┘◄┘
//! ```
//!
//! `Suspect` is the hedge between the two failure-detection errors: a
//! suspect backend stays routable (a false positive must not shed
//! capacity) but a prober can bias new work away from it. `Dead` is the
//! only unroutable state. A dead backend that beats again does not jump
//! straight back to `Healthy` — it must hold `rejoin_grace` consecutive
//! beats in `Rejoining` first, so one lucky heartbeat from a flapping
//! machine does not immediately re-attract traffic.

use nexus_profile::Micros;

/// Liveness of one backend, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Beating on schedule; fully routable.
    Healthy,
    /// Missing beats but not yet declared dead; still routable.
    Suspect,
    /// Declared dead; never routable.
    Dead,
    /// Beating again after death; routable, but one miss sends it back
    /// to [`Liveness::Dead`].
    Rejoining,
}

/// Failure-detection thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// How often the frontend probes each backend.
    pub probe_interval: Micros,
    /// Consecutive misses before `Healthy` degrades to `Suspect`.
    pub suspect_after: u32,
    /// Consecutive misses before `Suspect` degrades to `Dead`.
    pub dead_after: u32,
    /// Consecutive beats a dead backend must hold in `Rejoining` before
    /// it is trusted as `Healthy` again.
    pub rejoin_grace: u32,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            probe_interval: Micros::from_millis(100),
            suspect_after: 1,
            dead_after: 3,
            rejoin_grace: 2,
        }
    }
}

/// One observed liveness transition, for tracing and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Backend that moved.
    pub backend: u32,
    /// State before the probe result.
    pub from: Liveness,
    /// State after.
    pub to: Liveness,
    /// Probe timestamp.
    pub at: Micros,
}

#[derive(Debug, Clone)]
struct Entry {
    liveness: Liveness,
    /// Consecutive misses while alive (reset by any beat).
    misses: u32,
    /// Consecutive beats while rejoining (reset by any miss).
    grace_beats: u32,
}

/// The registry: liveness per backend id, updated by probe results.
#[derive(Debug, Clone)]
pub struct BackendRegistry {
    cfg: RegistryConfig,
    entries: Vec<Entry>,
}

impl BackendRegistry {
    /// A registry tracking backends `0..n`, all initially healthy.
    pub fn new(n: usize, cfg: RegistryConfig) -> Self {
        assert!(cfg.suspect_after >= 1, "suspect_after must be at least 1");
        assert!(
            cfg.dead_after > cfg.suspect_after,
            "dead_after must exceed suspect_after, else Suspect is unreachable"
        );
        assert!(cfg.rejoin_grace >= 1, "rejoin_grace must be at least 1");
        BackendRegistry {
            cfg,
            entries: vec![
                Entry {
                    liveness: Liveness::Healthy,
                    misses: 0,
                    grace_beats: 0,
                };
                n
            ],
        }
    }

    /// Number of tracked backends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry tracks no backends.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Detection thresholds in force.
    pub fn config(&self) -> RegistryConfig {
        self.cfg
    }

    /// Current liveness of `backend`.
    pub fn liveness(&self, backend: u32) -> Liveness {
        self.entries[backend as usize].liveness
    }

    /// Whether the router may send work to `backend`. Everything but
    /// [`Liveness::Dead`] is routable: suspicion is a bias, not a ban.
    pub fn routable(&self, backend: u32) -> bool {
        self.entries[backend as usize].liveness != Liveness::Dead
    }

    /// Count of currently routable backends.
    pub fn routable_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.liveness != Liveness::Dead)
            .count()
    }

    /// Records a successful probe of `backend` at `now`. Returns the
    /// transition if liveness changed.
    pub fn record_beat(&mut self, backend: u32, now: Micros) -> Option<Transition> {
        let grace = self.cfg.rejoin_grace;
        let e = &mut self.entries[backend as usize];
        let from = e.liveness;
        e.misses = 0;
        match e.liveness {
            Liveness::Healthy => {}
            Liveness::Suspect => e.liveness = Liveness::Healthy,
            Liveness::Dead => {
                e.liveness = Liveness::Rejoining;
                e.grace_beats = 1;
            }
            Liveness::Rejoining => {
                e.grace_beats += 1;
                if e.grace_beats >= grace {
                    e.liveness = Liveness::Healthy;
                    e.grace_beats = 0;
                }
            }
        }
        (e.liveness != from).then_some(Transition {
            backend,
            from,
            to: e.liveness,
            at: now,
        })
    }

    /// Records a failed probe of `backend` at `now`. Returns the
    /// transition if liveness changed.
    pub fn record_miss(&mut self, backend: u32, now: Micros) -> Option<Transition> {
        let cfg = self.cfg;
        let e = &mut self.entries[backend as usize];
        let from = e.liveness;
        match e.liveness {
            Liveness::Dead => {}
            // One miss while on probation and the backend is dead again:
            // probation exists to catch exactly this flapping.
            Liveness::Rejoining => {
                e.liveness = Liveness::Dead;
                e.grace_beats = 0;
                e.misses = 0;
            }
            Liveness::Healthy | Liveness::Suspect => {
                e.misses += 1;
                if e.misses >= cfg.dead_after {
                    e.liveness = Liveness::Dead;
                    e.misses = 0;
                } else if e.misses >= cfg.suspect_after {
                    e.liveness = Liveness::Suspect;
                }
            }
        }
        (e.liveness != from).then_some(Transition {
            backend,
            from,
            to: e.liveness,
            at: now,
        })
    }
}

/// Whether `from → to` is an edge of the liveness state machine. The
/// property test below holds every observed transition to this.
pub fn valid_edge(from: Liveness, to: Liveness) -> bool {
    use Liveness::*;
    matches!(
        (from, to),
        (Healthy, Suspect)
            | (Suspect, Healthy)
            | (Suspect, Dead)
            | (Dead, Rejoining)
            | (Rejoining, Healthy)
            | (Rejoining, Dead)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reg(cfg: RegistryConfig) -> BackendRegistry {
        BackendRegistry::new(4, cfg)
    }

    #[test]
    fn the_happy_degradation_path() {
        let mut r = reg(RegistryConfig::default());
        let t0 = Micros::ZERO;
        assert_eq!(r.liveness(0), Liveness::Healthy);
        // First miss: suspect, still routable.
        let t = r.record_miss(0, t0).expect("transition");
        assert_eq!((t.from, t.to), (Liveness::Healthy, Liveness::Suspect));
        assert!(r.routable(0));
        // Beat recovers without passing through probation.
        let t = r.record_beat(0, t0).expect("transition");
        assert_eq!((t.from, t.to), (Liveness::Suspect, Liveness::Healthy));
        // Three consecutive misses kill it.
        r.record_miss(0, t0);
        r.record_miss(0, t0);
        let t = r.record_miss(0, t0).expect("transition");
        assert_eq!(t.to, Liveness::Dead);
        assert!(!r.routable(0));
        assert_eq!(r.routable_count(), 3);
    }

    #[test]
    fn rejoin_requires_grace_and_one_miss_re_kills() {
        let mut r = reg(RegistryConfig::default());
        for _ in 0..3 {
            r.record_miss(1, Micros::ZERO);
        }
        assert_eq!(r.liveness(1), Liveness::Dead);
        // First beat: probation, routable again.
        let t = r.record_beat(1, Micros::ZERO).expect("transition");
        assert_eq!(t.to, Liveness::Rejoining);
        assert!(r.routable(1));
        // A single miss on probation is instant death.
        let t = r.record_miss(1, Micros::ZERO).expect("transition");
        assert_eq!(t.to, Liveness::Dead);
        // Two consecutive beats (rejoin_grace = 2) restore trust.
        r.record_beat(1, Micros::ZERO);
        let t = r.record_beat(1, Micros::ZERO).expect("transition");
        assert_eq!((t.from, t.to), (Liveness::Rejoining, Liveness::Healthy));
    }

    #[test]
    fn steady_beats_are_silent() {
        let mut r = reg(RegistryConfig::default());
        for _ in 0..100 {
            assert!(r.record_beat(2, Micros::ZERO).is_none());
        }
        assert_eq!(r.liveness(2), Liveness::Healthy);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Satellite: under any interleaving of beats and misses, the
        /// registry only ever walks valid edges of the state machine,
        /// and a dead backend is never routable.
        #[test]
        fn random_probe_histories_stay_on_the_state_machine(
            outcomes in prop::collection::vec(prop::bool::Any, 1..200usize),
            suspect_after in 1u32..3,
            extra_dead in 1u32..4,
            rejoin_grace in 1u32..4,
        ) {
            let cfg = RegistryConfig {
                probe_interval: Micros::from_millis(100),
                suspect_after,
                dead_after: suspect_after + extra_dead,
                rejoin_grace,
            };
            let mut r = BackendRegistry::new(1, cfg);
            let mut prev = r.liveness(0);
            for (i, beat) in outcomes.iter().enumerate() {
                let now = Micros::from_millis(100 * (i as u64 + 1));
                let tr = if *beat {
                    r.record_beat(0, now)
                } else {
                    r.record_miss(0, now)
                };
                let cur = r.liveness(0);
                match tr {
                    Some(t) => {
                        prop_assert_eq!(t.from, prev);
                        prop_assert_eq!(t.to, cur);
                        prop_assert!(
                            valid_edge(t.from, t.to),
                            "invalid edge {:?} -> {:?}", t.from, t.to
                        );
                        prop_assert!(t.from != t.to);
                    }
                    None => prop_assert_eq!(cur, prev),
                }
                // The routing invariant: dead means unroutable, and
                // nothing else does.
                prop_assert_eq!(r.routable(0), cur != Liveness::Dead);
                prev = cur;
            }
        }
    }
}
