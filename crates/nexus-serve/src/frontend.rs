//! The frontend: accepts client submits, admits at the edge, routes by
//! the active epoch table, dispatches to backends with deadline-aware
//! retry, and probes backend health.
//!
//! Failure-domain isolation is the organizing idea: a backend death is
//! contained by the registry (stop routing there) and the retry path
//! (re-dispatch in-flight work elsewhere *if the deadline budget still
//! covers it*); a scheduler stall is contained by epoch versioning (keep
//! serving the last committed table); client misbehavior is contained by
//! per-connection handlers with typed protocol errors. No failure in one
//! domain widens into another.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use nexus_profile::Micros;
use nexus_runtime::DropCause;

use crate::admission::{AdmissionGate, SessionSlo};
use crate::proto::{read_frame, write_frame, Msg, ProtoError, Verdict};
use crate::registry::{BackendRegistry, RegistryConfig, Transition};
use crate::routing::EpochRouter;

/// Monotonic wall clock in [`Micros`] since frontend start.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    start: Instant,
}

impl Clock {
    /// A clock anchored at "now".
    pub fn new() -> Self {
        Clock {
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed since the anchor.
    pub fn now(&self) -> Micros {
        Micros::from_micros(self.start.elapsed().as_micros() as u64)
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

/// Static frontend configuration.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Backend addresses, indexed by the backend ids routing tables use.
    pub backends: Vec<SocketAddr>,
    /// Failure-detection thresholds for the registry and prober.
    pub registry: RegistryConfig,
    /// How long retired routing tables are pinned after an epoch swap.
    pub sunset_grace: Micros,
    /// Per-session SLO parameters, indexed by session id.
    pub slos: Vec<SessionSlo>,
}

/// Number of [`DropCause`] variants (the stats array is per-cause).
const CAUSES: usize = 7;

fn cause_index(cause: DropCause) -> usize {
    match cause {
        DropCause::NoRoute => 0,
        DropCause::EarlySacrifice => 1,
        DropCause::Expired => 2,
        DropCause::Orphaned => 3,
        DropCause::Stranded => 4,
        DropCause::RunEnd => 5,
        DropCause::AdmissionRejected => 6,
    }
}

/// Cause for a stats index, inverse of the internal index map.
pub fn cause_for_index(i: usize) -> DropCause {
    [
        DropCause::NoRoute,
        DropCause::EarlySacrifice,
        DropCause::Expired,
        DropCause::Orphaned,
        DropCause::Stranded,
        DropCause::RunEnd,
        DropCause::AdmissionRejected,
    ][i]
}

#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    retried: AtomicU64,
    drops: [AtomicU64; CAUSES],
    epochs_applied: AtomicU64,
    probes_sent: AtomicU64,
    probe_misses: AtomicU64,
    /// Completed requests whose measured latency exceeded their budget —
    /// the soak gate asserts this stays zero: a retry that cannot fit
    /// the remaining budget must be dropped, not sent.
    budget_violations: AtomicU64,
}

/// A point-in-time copy of the frontend counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Submits received.
    pub submitted: u64,
    /// Requests completed within budget.
    pub completed: u64,
    /// Completed-or-dropped requests that took the retry path.
    pub retried: u64,
    /// Drops by cause, indexed as [`cause_for_index`].
    pub drops: [u64; CAUSES],
    /// Routing epochs committed.
    pub epochs_applied: u64,
    /// Health probes sent.
    pub probes_sent: u64,
    /// Health probes that failed.
    pub probe_misses: u64,
    /// Completed requests that overran their budget (must stay 0).
    pub budget_violations: u64,
}

impl StatsSnapshot {
    /// Total drops across causes.
    pub fn dropped(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// The conservation check: every submit accounted, exactly once.
    pub fn accounted(&self) -> bool {
        self.completed + self.dropped() == self.submitted
    }
}

struct Core {
    cfg: FrontendConfig,
    clock: Clock,
    registry: Mutex<BackendRegistry>,
    router: Mutex<EpochRouter>,
    gates: Mutex<Vec<AdmissionGate>>,
    transitions: Mutex<Vec<Transition>>,
    stats: Stats,
    shutdown: AtomicBool,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// Poll interval for the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Per-connection read timeout (shutdown responsiveness bound).
const READ_POLL: Duration = Duration::from_millis(25);

/// A running frontend.
pub struct FrontendHandle {
    /// Address clients and the scheduler connect to.
    pub addr: SocketAddr,
    core: Arc<Core>,
    accept_thread: Option<JoinHandle<()>>,
    prober_thread: Option<JoinHandle<()>>,
}

impl FrontendHandle {
    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.core.stats;
        let mut drops = [0u64; CAUSES];
        for (i, d) in s.drops.iter().enumerate() {
            drops[i] = d.load(Ordering::SeqCst);
        }
        StatsSnapshot {
            submitted: s.submitted.load(Ordering::SeqCst),
            completed: s.completed.load(Ordering::SeqCst),
            retried: s.retried.load(Ordering::SeqCst),
            drops,
            epochs_applied: s.epochs_applied.load(Ordering::SeqCst),
            probes_sent: s.probes_sent.load(Ordering::SeqCst),
            probe_misses: s.probe_misses.load(Ordering::SeqCst),
            budget_violations: s.budget_violations.load(Ordering::SeqCst),
        }
    }

    /// Epochs committed so far, in commit order.
    pub fn applied_epochs(&self) -> Vec<u64> {
        self.core
            .router
            .lock()
            .expect("router poisoned")
            .applied()
            .to_vec()
    }

    /// Liveness transitions observed by the prober, in order.
    pub fn transitions(&self) -> Vec<Transition> {
        self.core
            .transitions
            .lock()
            .expect("transitions poisoned")
            .clone()
    }

    /// Current liveness of `backend` as the registry sees it.
    pub fn liveness(&self, backend: u32) -> crate::registry::Liveness {
        self.core
            .registry
            .lock()
            .expect("registry poisoned")
            .liveness(backend)
    }

    /// Stops the frontend and joins every thread it spawned. Returns the
    /// number of connection-handler threads reaped.
    pub fn shutdown(mut self) -> usize {
        self.core.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.prober_thread.take() {
            let _ = t.join();
        }
        let handlers =
            std::mem::take(&mut *self.core.handlers.lock().expect("handler list poisoned"));
        let n = handlers.len();
        for h in handlers {
            let _ = h.join();
        }
        n
    }
}

/// Spawns a frontend on `127.0.0.1:0` with its prober running.
pub fn spawn_frontend(cfg: FrontendConfig) -> io::Result<FrontendHandle> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let registry = BackendRegistry::new(cfg.backends.len(), cfg.registry);
    let gates: Vec<AdmissionGate> = cfg.slos.iter().map(|s| AdmissionGate::new(*s)).collect();
    let router = EpochRouter::new(cfg.sunset_grace);
    let core = Arc::new(Core {
        cfg,
        clock: Clock::new(),
        registry: Mutex::new(registry),
        router: Mutex::new(router),
        gates: Mutex::new(gates),
        transitions: Mutex::new(Vec::new()),
        stats: Stats::default(),
        shutdown: AtomicBool::new(false),
        handlers: Mutex::new(Vec::new()),
    });
    let accept_core = Arc::clone(&core);
    let accept_thread = thread::Builder::new()
        .name(format!("frontend-accept-{}", addr.port()))
        .spawn(move || accept_loop(listener, accept_core))?;
    let prober_core = Arc::clone(&core);
    let prober_thread = thread::Builder::new()
        .name("frontend-prober".into())
        .spawn(move || prober_loop(prober_core))?;
    Ok(FrontendHandle {
        addr,
        core,
        accept_thread: Some(accept_thread),
        prober_thread: Some(prober_thread),
    })
}

fn accept_loop(listener: TcpListener, core: Arc<Core>) {
    while !core.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_core = Arc::clone(&core);
                let handle = thread::Builder::new()
                    .name("frontend-conn".into())
                    .spawn(move || handle_conn(stream, conn_core))
                    .expect("spawn frontend connection handler");
                let mut handlers = core.handlers.lock().expect("handler list poisoned");
                handlers.retain(|h| !h.is_finished());
                handlers.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

fn handle_conn(mut stream: TcpStream, core: Arc<Core>) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    loop {
        if core.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let msg = match read_frame(&mut stream) {
            Ok(m) => m,
            Err(ProtoError::Io(io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)) => continue,
            Err(_) => return,
        };
        let reply = match msg {
            Msg::Submit {
                request,
                session,
                budget_us,
            } => Some(handle_submit(&core, request, session, budget_us)),
            Msg::Ping { seq } => Some(Msg::Pong { seq }),
            Msg::EpochBegin { epoch } => {
                core.router.lock().expect("router poisoned").begin(epoch);
                None
            }
            Msg::EpochRoute { session, backends } => {
                core.router
                    .lock()
                    .expect("router poisoned")
                    .route(session, backends);
                None
            }
            Msg::EpochCommit { epoch } => {
                let now = core.clock.now();
                let applied = core
                    .router
                    .lock()
                    .expect("router poisoned")
                    .commit(epoch, now);
                applied.map(|e| {
                    core.stats.epochs_applied.fetch_add(1, Ordering::SeqCst);
                    Msg::EpochAck { epoch: e }
                })
            }
            // Clients must not speak backend or frontend-outbound frames.
            _ => return,
        };
        if let Some(reply) = reply {
            if write_frame(&mut stream, &reply).is_err() {
                return;
            }
        }
    }
}

/// The full life of one request, synchronously on the connection thread.
fn handle_submit(core: &Core, request: u64, session: u32, budget_us: u64) -> Msg {
    core.stats.submitted.fetch_add(1, Ordering::SeqCst);
    let t0 = core.clock.now();
    let budget = Micros::from_micros(budget_us);
    let deadline = t0 + budget;

    let done_drop = |cause: DropCause, retried: bool| {
        core.stats.drops[cause_index(cause)].fetch_add(1, Ordering::SeqCst);
        if retried {
            core.stats.retried.fetch_add(1, Ordering::SeqCst);
        }
        Msg::Done {
            request,
            verdict: Verdict::Dropped(cause),
            latency_us: core.clock.now().saturating_sub(t0).as_micros(),
            retried,
        }
    };

    // Unknown session: nothing routes it.
    let Some(slo) = core.cfg.slos.get(session as usize).copied() else {
        return done_drop(DropCause::NoRoute, false);
    };

    // Edge admission (doomed check + overload gate).
    let decision = {
        let mut gates = core.gates.lock().expect("gates poisoned");
        gates[session as usize].admit(t0, deadline)
    };
    if let Some(cause) = decision.drop_cause() {
        return done_drop(cause, false);
    }

    // Route under the current epoch's table; the snapshot pins the table
    // for this request even if an epoch swap lands mid-dispatch.
    let table = core.router.lock().expect("router poisoned").snapshot();
    let first = {
        let registry = core.registry.lock().expect("registry poisoned");
        table.pick(session, &registry, None)
    };
    let Some(first) = first else {
        return done_drop(DropCause::NoRoute, false);
    };

    // First attempt, bounded by the whole remaining budget.
    if dispatch(core, first, request, session, &slo, deadline) {
        return finish_completed(core, request, t0, budget, false);
    }

    // The attempt failed: that is probe-grade evidence against the
    // backend. Feed it to the registry so routing reacts before the next
    // prober tick.
    {
        let now = core.clock.now();
        let mut registry = core.registry.lock().expect("registry poisoned");
        if let Some(tr) = registry.record_miss(first, now) {
            core.transitions
                .lock()
                .expect("transitions poisoned")
                .push(tr);
        }
    }

    // Retry only if the remaining budget still covers an execution — a
    // retry that cannot finish in time is load without value.
    let now = core.clock.now();
    if now + slo.ell_min > deadline {
        return done_drop(DropCause::Stranded, false);
    }
    let second = {
        let registry = core.registry.lock().expect("registry poisoned");
        table.pick(session, &registry, Some(first))
    };
    // No distinct second backend: the request is stranded un-retried.
    let Some(second) = second else {
        return done_drop(DropCause::Stranded, false);
    };
    if dispatch(core, second, request, session, &slo, deadline) {
        return finish_completed(core, request, t0, budget, true);
    }
    let now = core.clock.now();
    let mut registry = core.registry.lock().expect("registry poisoned");
    if let Some(tr) = registry.record_miss(second, now) {
        core.transitions
            .lock()
            .expect("transitions poisoned")
            .push(tr);
    }
    drop(registry);
    done_drop(DropCause::Stranded, true)
}

fn finish_completed(core: &Core, request: u64, t0: Micros, budget: Micros, retried: bool) -> Msg {
    let latency = core.clock.now().saturating_sub(t0);
    core.stats.completed.fetch_add(1, Ordering::SeqCst);
    if retried {
        core.stats.retried.fetch_add(1, Ordering::SeqCst);
    }
    if latency > budget {
        core.stats.budget_violations.fetch_add(1, Ordering::SeqCst);
    }
    Msg::Done {
        request,
        verdict: Verdict::Completed,
        latency_us: latency.as_micros(),
        retried,
    }
}

/// One dispatch attempt: connect, send `Exec`, await `ExecDone`, all
/// bounded by the request's remaining deadline budget.
fn dispatch(
    core: &Core,
    backend: u32,
    request: u64,
    session: u32,
    slo: &SessionSlo,
    deadline: Micros,
) -> bool {
    let addr = core.cfg.backends[backend as usize];
    let remaining = deadline.saturating_sub(core.clock.now());
    if remaining == Micros::ZERO {
        return false;
    }
    let timeout = Duration::from_micros(remaining.as_micros());
    let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    let mut stream = stream;
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    let exec = Msg::Exec {
        request,
        session,
        cost_us: slo.ell_min.as_micros(),
    };
    if write_frame(&mut stream, &exec).is_err() {
        return false;
    }
    matches!(
        read_frame(&mut stream),
        Ok(Msg::ExecDone { request: r, ok: true }) if r == request
    )
}

fn prober_loop(core: Arc<Core>) {
    let interval = {
        let registry = core.registry.lock().expect("registry poisoned");
        Duration::from_micros(registry.config().probe_interval.as_micros())
    };
    let mut seq = 0u64;
    while !core.shutdown.load(Ordering::SeqCst) {
        for (id, addr) in core.cfg.backends.iter().enumerate() {
            if core.shutdown.load(Ordering::SeqCst) {
                return;
            }
            seq += 1;
            core.stats.probes_sent.fetch_add(1, Ordering::SeqCst);
            let ok = probe(*addr, seq, interval);
            let now = core.clock.now();
            let mut registry = core.registry.lock().expect("registry poisoned");
            let tr = if ok {
                registry.record_beat(id as u32, now)
            } else {
                core.stats.probe_misses.fetch_add(1, Ordering::SeqCst);
                registry.record_miss(id as u32, now)
            };
            drop(registry);
            if let Some(tr) = tr {
                core.transitions
                    .lock()
                    .expect("transitions poisoned")
                    .push(tr);
            }
        }
        thread::sleep(interval);
    }
}

/// One short-lived health probe: connect, ping, await the echoed pong.
fn probe(addr: SocketAddr, seq: u64, timeout: Duration) -> bool {
    let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    let mut stream = stream;
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    if write_frame(&mut stream, &Msg::Ping { seq }).is_err() {
        return false;
    }
    matches!(read_frame(&mut stream), Ok(Msg::Pong { seq: s }) if s == seq)
}
