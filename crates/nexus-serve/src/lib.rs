//! Networked serving front door (§5 of the Nexus paper, made concrete).
//!
//! The simulator crates model the cluster's *scheduling*; this crate
//! supplies the piece a real deployment stands on: frontends that
//! accept requests over TCP, route them to backends under
//! epoch-versioned tables, detect backend failure, retry within the
//! deadline budget, and shed doomed or unservable load at the door.
//! Everything runs on `std::net` with blocking sockets and plain
//! threads — no async runtime — so the crate builds offline and the
//! control flow reads linearly.
//!
//! Module map:
//! - [`proto`]: the framed wire protocol (length-prefixed, typed errors);
//! - [`registry`]: the health-checked backend registry (healthy →
//!   suspect → dead → rejoining);
//! - [`routing`]: epoch-versioned routing tables with atomic swap and
//!   drain-under-old-epoch semantics;
//! - [`admission`]: §5.2 early drop plus the analytic overload gate;
//! - [`backend`]: a killable backend executor for tests and soaks;
//! - [`frontend`]: the frontend proper — accept, admit, route, dispatch,
//!   retry, probe;
//! - [`soak`]: the smoke-and-chaos harness the CI gate and the
//!   `nexus-serve` binary both run.

pub mod admission;
pub mod backend;
pub mod frontend;
pub mod proto;
pub mod registry;
pub mod routing;
pub mod soak;

pub use admission::{AdmissionGate, Decision, SessionSlo};
pub use backend::{spawn_backend, BackendHandle, BackendModel, InstantModel, ScaledSleepModel};
pub use frontend::{spawn_frontend, Clock, FrontendConfig, FrontendHandle, StatsSnapshot};
pub use proto::{Msg, ProtoError, Verdict};
pub use registry::{BackendRegistry, Liveness, RegistryConfig, Transition};
pub use routing::{EpochRouter, RouteTable};
pub use soak::{run_soak, SoakConfig, SoakReport};
