//! A minimal networked backend: accepts framed connections, answers
//! pings, executes requests under a pluggable cost model.
//!
//! This is the serving-side stand-in for a GPU node. The interesting
//! failure machinery lives on the frontend; the backend's job is to be
//! killable: [`BackendHandle::kill`] makes it refuse new connections and
//! abandon existing ones mid-stream, exactly the silhouette a crashed
//! node presents to the prober, while [`BackendHandle::shutdown`] joins
//! every thread it ever spawned so a test can assert nothing leaked.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::proto::{read_frame, write_frame, Msg, ProtoError};

/// How a backend turns a request's nominal cost into wall-clock work.
pub trait BackendModel: Send + Sync + 'static {
    /// Executes one request; returns whether it succeeded.
    fn execute(&self, session: u32, cost_us: u64) -> bool;
}

/// Completes instantly — for tests and CI soaks where real sleeping
/// would only slow the gate down.
pub struct InstantModel;

impl BackendModel for InstantModel {
    fn execute(&self, _session: u32, _cost_us: u64) -> bool {
        true
    }
}

/// Sleeps `cost_us × scale`, the same trick the in-process live runtime
/// uses to emulate GPU occupancy without a GPU.
pub struct ScaledSleepModel {
    /// Multiplier on the nominal cost (1.0 = sleep the full cost).
    pub scale: f64,
}

impl BackendModel for ScaledSleepModel {
    fn execute(&self, _session: u32, cost_us: u64) -> bool {
        let us = (cost_us as f64 * self.scale) as u64;
        if us > 0 {
            thread::sleep(Duration::from_micros(us));
        }
        true
    }
}

/// Poll interval for the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Per-connection read timeout; bounds how long a handler thread takes
/// to notice a shutdown or kill flag.
const READ_POLL: Duration = Duration::from_millis(25);

struct Shared {
    model: Box<dyn BackendModel>,
    /// Hard-kill flag: stop accepting, abandon live connections.
    killed: AtomicBool,
    /// Clean-shutdown flag: drain and exit.
    shutdown: AtomicBool,
    /// Extra artificial latency per request, µs (fault injection knob).
    exec_delay_us: AtomicU64,
    /// Requests executed.
    executed: AtomicU64,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running backend and the knobs a test harness needs.
pub struct BackendHandle {
    /// The address the backend listens on.
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl BackendHandle {
    /// Simulates a crash: refuse new connections, abandon current ones.
    /// The process-level resources are reclaimed later by
    /// [`BackendHandle::shutdown`].
    pub fn kill(&self) {
        self.shared.killed.store(true, Ordering::SeqCst);
    }

    /// Whether [`BackendHandle::kill`] was called.
    pub fn is_killed(&self) -> bool {
        self.shared.killed.load(Ordering::SeqCst)
    }

    /// Injects `us` of extra latency into every subsequent execution —
    /// the slow-loris knob.
    pub fn set_exec_delay_us(&self, us: u64) {
        self.shared.exec_delay_us.store(us, Ordering::SeqCst);
    }

    /// Requests executed so far.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Stops the backend and joins every thread it spawned. Returns the
    /// number of handler threads reaped (accept thread not included).
    pub fn shutdown(mut self) -> usize {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handlers =
            std::mem::take(&mut *self.shared.handlers.lock().expect("handler list poisoned"));
        let n = handlers.len();
        for h in handlers {
            let _ = h.join();
        }
        n
    }
}

/// Spawns a backend listening on `127.0.0.1:0` (kernel-assigned port).
pub fn spawn_backend(model: impl BackendModel) -> io::Result<BackendHandle> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        model: Box::new(model),
        killed: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        exec_delay_us: AtomicU64::new(0),
        executed: AtomicU64::new(0),
        handlers: Mutex::new(Vec::new()),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::Builder::new()
        .name(format!("backend-accept-{}", addr.port()))
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(BackendHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.killed.load(Ordering::SeqCst) {
                    // A killed backend accepts nothing: drop the socket
                    // on the floor like a crashed process would.
                    drop(stream);
                    continue;
                }
                let conn_shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name("backend-conn".into())
                    .spawn(move || handle_conn(stream, conn_shared))
                    .expect("spawn backend connection handler");
                let mut handlers = shared.handlers.lock().expect("handler list poisoned");
                // Opportunistically reap finished handlers so a long
                // soak with many short probe connections stays bounded.
                handlers.retain(|h| !h.is_finished());
                handlers.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

fn handle_conn(mut stream: TcpStream, shared: Arc<Shared>) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || shared.killed.load(Ordering::SeqCst) {
            return;
        }
        let msg = match read_frame(&mut stream) {
            Ok(m) => m,
            // Timeout: just a quiet peer; re-check the flags and wait on.
            Err(ProtoError::Io(io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)) => continue,
            // EOF, reset, or a malformed frame: the connection is done.
            Err(_) => return,
        };
        // A kill that landed while we were blocked reading must win: a
        // crashed process answers nothing it had not already answered.
        if shared.killed.load(Ordering::SeqCst) {
            return;
        }
        let reply = match msg {
            Msg::Ping { seq } => Msg::Pong { seq },
            Msg::Exec {
                request,
                session,
                cost_us,
            } => {
                let extra = shared.exec_delay_us.load(Ordering::SeqCst);
                if extra > 0 {
                    thread::sleep(Duration::from_micros(extra));
                }
                // Re-check for a kill that landed while we slept: a
                // crashed node never answers.
                if shared.killed.load(Ordering::SeqCst) {
                    return;
                }
                let ok = shared.model.execute(session, cost_us);
                shared.executed.fetch_add(1, Ordering::Relaxed);
                Msg::ExecDone { request, ok }
            }
            // Anything else is a protocol violation from the peer.
            _ => return,
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect(addr: SocketAddr) -> TcpStream {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        s
    }

    #[test]
    fn pings_and_execs_round_trip() {
        let backend = spawn_backend(InstantModel).expect("spawn");
        let mut conn = connect(backend.addr);
        write_frame(&mut conn, &Msg::Ping { seq: 9 }).expect("ping");
        assert_eq!(read_frame(&mut conn).expect("pong"), Msg::Pong { seq: 9 });
        write_frame(
            &mut conn,
            &Msg::Exec {
                request: 1,
                session: 0,
                cost_us: 100,
            },
        )
        .expect("exec");
        assert_eq!(
            read_frame(&mut conn).expect("done"),
            Msg::ExecDone {
                request: 1,
                ok: true
            }
        );
        assert_eq!(backend.executed(), 1);
        drop(conn);
        backend.shutdown();
    }

    #[test]
    fn a_killed_backend_goes_silent_but_still_joins_cleanly() {
        let backend = spawn_backend(InstantModel).expect("spawn");
        let mut conn = connect(backend.addr);
        write_frame(&mut conn, &Msg::Ping { seq: 1 }).expect("ping");
        read_frame(&mut conn).expect("pong");

        backend.kill();
        // The live connection is abandoned: the next request gets EOF or
        // a timeout, never an answer.
        write_frame(&mut conn, &Msg::Ping { seq: 2 }).ok();
        assert!(read_frame(&mut conn).is_err());
        // New connections are accepted-and-dropped or refused.
        let mut probe = connect(backend.addr);
        write_frame(&mut probe, &Msg::Ping { seq: 3 }).ok();
        assert!(read_frame(&mut probe).is_err());

        backend.shutdown();
    }
}
