//! Epoch-versioned session routing tables.
//!
//! The scheduler pushes a new routing table each epoch (§5: frontends
//! hold per-session replica sets and route with weighted round robin).
//! The push is three-phase — `begin(e)`, one `route` per session,
//! `commit(e)` — and the frontend keeps serving the *previous* epoch for
//! the entire push: the active table is an `Arc` swapped atomically at
//! commit, so an update lands mid-traffic without a dropped epoch and
//! without a lock on the request path. In-flight requests that snapshot
//! the old table drain under it (the retired `Arc` keeps it alive), which
//! is exactly the paper's hand-off rule: a frontend holding epoch N
//! serves N until N+1 is *fully* applied.
//!
//! A `begin` that arrives while another push is pending discards the
//! partial silently — the scheduler crashed or re-sent — and the active
//! table is untouched. A `commit` with a mismatched epoch is refused for
//! the same reason.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nexus_profile::Micros;

use crate::registry::BackendRegistry;

/// One epoch's immutable routing table: replica sets per session.
#[derive(Debug)]
pub struct RouteTable {
    /// The epoch this table belongs to.
    pub epoch: u64,
    /// `routes[session]` = backend ids serving that session.
    routes: Vec<Vec<u32>>,
    /// Shared round-robin cursor. One counter across sessions is enough:
    /// each session indexes it modulo its own replica count, and the
    /// frontend only needs spread, not strict per-session fairness.
    cursor: AtomicU64,
}

impl RouteTable {
    /// Builds a table. `routes[s]` lists the backends serving session `s`.
    pub fn new(epoch: u64, routes: Vec<Vec<u32>>) -> Self {
        RouteTable {
            epoch,
            routes,
            cursor: AtomicU64::new(0),
        }
    }

    /// Replica set for `session` (empty slice if the session is unknown).
    pub fn replicas(&self, session: u32) -> &[u32] {
        self.routes.get(session as usize).map_or(&[], Vec::as_slice)
    }

    /// Number of sessions the table covers.
    pub fn sessions(&self) -> usize {
        self.routes.len()
    }

    /// Picks a backend for `session`: round robin over its replicas,
    /// skipping unroutable (dead) backends and `exclude` (the backend a
    /// failed first attempt came from). `None` if every replica is
    /// excluded or dead — the caller drops with `NoRoute`.
    pub fn pick(
        &self,
        session: u32,
        registry: &BackendRegistry,
        exclude: Option<u32>,
    ) -> Option<u32> {
        let replicas = self.replicas(session);
        if replicas.is_empty() {
            return None;
        }
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) as usize;
        (0..replicas.len())
            .map(|i| replicas[(start + i) % replicas.len()])
            .find(|&b| Some(b) != exclude && registry.routable(b))
    }
}

/// State of an epoch push in flight.
#[derive(Debug)]
struct Pending {
    epoch: u64,
    routes: Vec<Vec<u32>>,
}

/// Owns the active table and applies epoch pushes.
///
/// Request threads call [`EpochRouter::snapshot`] (one `Arc` clone, no
/// lock held across I/O); the control connection drives
/// `begin`/`route`/`commit` under the frontend's control lock.
#[derive(Debug)]
pub struct EpochRouter {
    active: Arc<RouteTable>,
    pending: Option<Pending>,
    /// Every epoch ever committed, in order — the "zero dropped epochs"
    /// assertion reads this.
    applied: Vec<u64>,
    /// Partial pushes discarded by a newer `begin`.
    discarded_partials: u64,
    /// Retired tables kept alive until `sunset_grace` after retirement,
    /// belt-and-braces for stragglers beyond the in-flight `Arc`s.
    retired: Vec<(Arc<RouteTable>, Micros)>,
    sunset_grace: Micros,
}

impl EpochRouter {
    /// A router starting at epoch 0 with no sessions routed.
    pub fn new(sunset_grace: Micros) -> Self {
        EpochRouter {
            active: Arc::new(RouteTable::new(0, Vec::new())),
            pending: None,
            applied: Vec::new(),
            discarded_partials: 0,
            retired: Vec::new(),
            sunset_grace,
        }
    }

    /// The table requests should route under right now.
    pub fn snapshot(&self) -> Arc<RouteTable> {
        Arc::clone(&self.active)
    }

    /// Epoch currently serving.
    pub fn active_epoch(&self) -> u64 {
        self.active.epoch
    }

    /// Epochs committed so far, in commit order.
    pub fn applied(&self) -> &[u64] {
        &self.applied
    }

    /// Partial pushes discarded by a newer `begin`.
    pub fn discarded_partials(&self) -> u64 {
        self.discarded_partials
    }

    /// Starts a push. Discards any pending partial push.
    pub fn begin(&mut self, epoch: u64) {
        if self.pending.take().is_some() {
            self.discarded_partials += 1;
        }
        self.pending = Some(Pending {
            epoch,
            routes: Vec::new(),
        });
    }

    /// Adds one session's replica set to the pending push. Ignored if no
    /// push is pending (a stale route after a discarded partial).
    pub fn route(&mut self, session: u32, backends: Vec<u32>) {
        if let Some(p) = &mut self.pending {
            let idx = session as usize;
            if p.routes.len() <= idx {
                p.routes.resize_with(idx + 1, Vec::new);
            }
            p.routes[idx] = backends;
        }
    }

    /// Atomically applies the pending push if `epoch` matches it.
    /// Returns the applied epoch (to ack) or `None` if there was nothing
    /// matching to commit — the active table is untouched either way.
    pub fn commit(&mut self, epoch: u64, now: Micros) -> Option<u64> {
        match self.pending.take() {
            Some(p) if p.epoch == epoch => {
                let old = std::mem::replace(
                    &mut self.active,
                    Arc::new(RouteTable::new(p.epoch, p.routes)),
                );
                self.retired.push((old, now));
                let keep_from = now.saturating_sub(self.sunset_grace);
                self.retired.retain(|(_, at)| *at >= keep_from);
                self.applied.push(epoch);
                Some(epoch)
            }
            Some(p) => {
                // Mismatched commit: drop the partial, keep serving.
                let _ = p;
                self.discarded_partials += 1;
                None
            }
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;

    fn registry(n: usize) -> BackendRegistry {
        BackendRegistry::new(n, RegistryConfig::default())
    }

    #[test]
    fn round_robin_spreads_and_skips_dead() {
        let table = RouteTable::new(1, vec![vec![0, 1, 2]]);
        let mut reg = registry(3);
        let mut seen = [0u32; 3];
        for _ in 0..300 {
            seen[table.pick(0, &reg, None).expect("route") as usize] += 1;
        }
        assert_eq!(seen, [100, 100, 100]);
        // Kill backend 1: its share redistributes, never routed.
        for _ in 0..3 {
            reg.record_miss(1, Micros::ZERO);
        }
        for _ in 0..300 {
            assert_ne!(table.pick(0, &reg, None), Some(1));
        }
    }

    #[test]
    fn exclude_forces_a_different_backend_or_none() {
        let table = RouteTable::new(1, vec![vec![3], vec![3, 4]]);
        let reg = registry(5);
        // Single replica, excluded: no route.
        assert_eq!(table.pick(0, &reg, Some(3)), None);
        // Two replicas: always the other one.
        for _ in 0..10 {
            assert_eq!(table.pick(1, &reg, Some(3)), Some(4));
        }
    }

    #[test]
    fn a_push_applies_atomically_and_the_old_epoch_drains() {
        let mut router = EpochRouter::new(Micros::from_secs(1));
        router.begin(1);
        router.route(0, vec![0, 1]);
        assert_eq!(router.commit(1, Micros::ZERO), Some(1));

        // A request snapshots epoch 1, then epoch 2 lands mid-flight.
        let in_flight = router.snapshot();
        router.begin(2);
        router.route(0, vec![2]);
        assert_eq!(router.active_epoch(), 1, "serving old epoch until commit");
        assert_eq!(router.commit(2, Micros::from_millis(5)), Some(2));
        assert_eq!(router.active_epoch(), 2);

        // The in-flight request still routes under the table it started
        // with — the old epoch drains, it is not yanked.
        assert_eq!(in_flight.epoch, 1);
        assert_eq!(in_flight.replicas(0), &[0, 1]);
        assert_eq!(router.applied(), &[1, 2], "no dropped epochs");
    }

    #[test]
    fn partial_pushes_never_touch_the_active_table() {
        let mut router = EpochRouter::new(Micros::ZERO);
        router.begin(1);
        router.route(0, vec![0]);
        router.commit(1, Micros::ZERO);

        // Push 2 stalls after one route; push 3 begins — 2 is discarded.
        router.begin(2);
        router.route(0, vec![9]);
        router.begin(3);
        assert_eq!(router.active_epoch(), 1);
        assert_eq!(router.discarded_partials(), 1);

        // A commit for the wrong epoch is refused.
        assert_eq!(router.commit(7, Micros::ZERO), None);
        assert_eq!(router.active_epoch(), 1);
        assert_eq!(router.snapshot().replicas(0), &[0]);
        assert_eq!(router.applied(), &[1]);
    }
}
