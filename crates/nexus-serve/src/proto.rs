//! The framed wire protocol of the front door.
//!
//! Every message travels as a length-prefixed frame over plain TCP: a
//! `u32` little-endian payload length, then the payload — one type-tag
//! byte followed by fixed-width little-endian fields. No external
//! serialization framework (the build is offline) and no panics on
//! malformed input: a truncated, oversized, or unknown frame is a typed
//! [`ProtoError`], because the peer on the other end of a socket is never
//! trusted to be well-behaved.
//!
//! Message families:
//! - data plane: [`Msg::Submit`]/[`Msg::Done`] between client and
//!   frontend, [`Msg::Exec`]/[`Msg::ExecDone`] between frontend and
//!   backend;
//! - health: [`Msg::Ping`]/[`Msg::Pong`] (frontend probes backends; the
//!   driver may probe frontends);
//! - control plane: [`Msg::EpochBegin`] → [`Msg::EpochRoute`]* →
//!   [`Msg::EpochCommit`] pushes one epoch-versioned routing table, acked
//!   with [`Msg::EpochAck`]. The three-phase framing is what makes
//!   mid-traffic updates safe: a partial push is discardable and the
//!   previous epoch keeps serving until the commit lands.

use std::fmt;
use std::io::{Read, Write};

use nexus_runtime::DropCause;

/// Hard cap on a frame's payload size. Nothing the protocol carries comes
/// close; anything larger is a corrupt or hostile peer.
pub const MAX_FRAME: u32 = 64 * 1024;

/// Why decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the message did.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes the payload had left.
        have: usize,
    },
    /// Unknown message tag.
    BadTag(u8),
    /// Unknown enum discriminant inside a message body.
    BadValue(&'static str),
    /// The frame header announced a payload beyond [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// The payload decoded but left unconsumed bytes behind.
    TrailingBytes {
        /// Total payload size.
        frame: usize,
        /// Bytes the message actually used.
        used: usize,
    },
    /// The underlying socket failed (includes clean EOF and timeouts;
    /// the kind disambiguates).
    Io(std::io::ErrorKind),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { need, have } => {
                write!(f, "truncated frame: needed {need} bytes, had {have}")
            }
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t}"),
            ProtoError::BadValue(what) => write!(f, "invalid value for {what}"),
            ProtoError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME} cap")
            }
            ProtoError::TrailingBytes { frame, used } => {
                write!(f, "frame of {frame} bytes but message used only {used}")
            }
            ProtoError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e.kind())
    }
}

/// Terminal status of one request, as reported in [`Msg::Done`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Served within its deadline budget.
    Completed,
    /// Dropped, with the same typed cause taxonomy the simulator uses.
    Dropped(DropCause),
}

fn verdict_to_wire(v: Verdict) -> u8 {
    match v {
        Verdict::Completed => 0,
        Verdict::Dropped(DropCause::NoRoute) => 1,
        Verdict::Dropped(DropCause::EarlySacrifice) => 2,
        Verdict::Dropped(DropCause::Expired) => 3,
        Verdict::Dropped(DropCause::Orphaned) => 4,
        Verdict::Dropped(DropCause::Stranded) => 5,
        Verdict::Dropped(DropCause::RunEnd) => 6,
        Verdict::Dropped(DropCause::AdmissionRejected) => 7,
    }
}

fn verdict_from_wire(b: u8) -> Result<Verdict, ProtoError> {
    Ok(match b {
        0 => Verdict::Completed,
        1 => Verdict::Dropped(DropCause::NoRoute),
        2 => Verdict::Dropped(DropCause::EarlySacrifice),
        3 => Verdict::Dropped(DropCause::Expired),
        4 => Verdict::Dropped(DropCause::Orphaned),
        5 => Verdict::Dropped(DropCause::Stranded),
        6 => Verdict::Dropped(DropCause::RunEnd),
        7 => Verdict::Dropped(DropCause::AdmissionRejected),
        _ => return Err(ProtoError::BadValue("verdict")),
    })
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Client → frontend: serve one request with `budget_us` of deadline
    /// budget from the moment the frontend admits it.
    Submit {
        /// Client-chosen request id, echoed in [`Msg::Done`].
        request: u64,
        /// Session the request belongs to.
        session: u32,
        /// SLO deadline budget in microseconds.
        budget_us: u64,
    },
    /// Frontend → client: terminal outcome of a submit.
    Done {
        /// Echoed request id.
        request: u64,
        /// Completed or dropped-with-cause.
        verdict: Verdict,
        /// Frontend-measured latency (admission to completion), µs.
        latency_us: u64,
        /// Whether a failed first dispatch was retried to a different
        /// backend (the `Retried` trace marker).
        retried: bool,
    },
    /// Frontend → backend: execute one request.
    Exec {
        /// Request id (unique per frontend).
        request: u64,
        /// Session to execute under.
        session: u32,
        /// Nominal single-item execution cost, µs (the backend model
        /// decides what to do with it).
        cost_us: u64,
    },
    /// Backend → frontend: execution finished.
    ExecDone {
        /// Echoed request id.
        request: u64,
        /// Whether execution succeeded.
        ok: bool,
    },
    /// Liveness probe.
    Ping {
        /// Echo value.
        seq: u64,
    },
    /// Probe response.
    Pong {
        /// Echoed value.
        seq: u64,
    },
    /// Scheduler → frontend: start pushing routing epoch `epoch`.
    EpochBegin {
        /// The epoch being pushed.
        epoch: u64,
    },
    /// Scheduler → frontend: one session's replica set in the pending
    /// epoch.
    EpochRoute {
        /// Session id.
        session: u32,
        /// Backend ids serving the session in the new epoch.
        backends: Vec<u32>,
    },
    /// Scheduler → frontend: atomically apply the pending epoch.
    EpochCommit {
        /// Must match the pending [`Msg::EpochBegin`].
        epoch: u64,
    },
    /// Frontend → scheduler: the epoch is fully applied.
    EpochAck {
        /// The applied epoch.
        epoch: u64,
    },
}

const TAG_SUBMIT: u8 = 1;
const TAG_DONE: u8 = 2;
const TAG_EXEC: u8 = 3;
const TAG_EXEC_DONE: u8 = 4;
const TAG_PING: u8 = 5;
const TAG_PONG: u8 = 6;
const TAG_EPOCH_BEGIN: u8 = 7;
const TAG_EPOCH_ROUTE: u8 = 8;
const TAG_EPOCH_COMMIT: u8 = 9;
const TAG_EPOCH_ACK: u8 = 10;

/// Encodes `msg` (payload only, no length prefix) into `buf`.
pub fn encode(msg: &Msg, buf: &mut Vec<u8>) {
    buf.clear();
    match msg {
        Msg::Submit {
            request,
            session,
            budget_us,
        } => {
            buf.push(TAG_SUBMIT);
            buf.extend_from_slice(&request.to_le_bytes());
            buf.extend_from_slice(&session.to_le_bytes());
            buf.extend_from_slice(&budget_us.to_le_bytes());
        }
        Msg::Done {
            request,
            verdict,
            latency_us,
            retried,
        } => {
            buf.push(TAG_DONE);
            buf.extend_from_slice(&request.to_le_bytes());
            buf.push(verdict_to_wire(*verdict));
            buf.extend_from_slice(&latency_us.to_le_bytes());
            buf.push(u8::from(*retried));
        }
        Msg::Exec {
            request,
            session,
            cost_us,
        } => {
            buf.push(TAG_EXEC);
            buf.extend_from_slice(&request.to_le_bytes());
            buf.extend_from_slice(&session.to_le_bytes());
            buf.extend_from_slice(&cost_us.to_le_bytes());
        }
        Msg::ExecDone { request, ok } => {
            buf.push(TAG_EXEC_DONE);
            buf.extend_from_slice(&request.to_le_bytes());
            buf.push(u8::from(*ok));
        }
        Msg::Ping { seq } => {
            buf.push(TAG_PING);
            buf.extend_from_slice(&seq.to_le_bytes());
        }
        Msg::Pong { seq } => {
            buf.push(TAG_PONG);
            buf.extend_from_slice(&seq.to_le_bytes());
        }
        Msg::EpochBegin { epoch } => {
            buf.push(TAG_EPOCH_BEGIN);
            buf.extend_from_slice(&epoch.to_le_bytes());
        }
        Msg::EpochRoute { session, backends } => {
            buf.push(TAG_EPOCH_ROUTE);
            buf.extend_from_slice(&session.to_le_bytes());
            // The u16 replica count bounds the variable part well below
            // MAX_FRAME.
            let n = u16::try_from(backends.len()).expect("replica set fits in u16");
            buf.extend_from_slice(&n.to_le_bytes());
            for b in backends {
                buf.extend_from_slice(&b.to_le_bytes());
            }
        }
        Msg::EpochCommit { epoch } => {
            buf.push(TAG_EPOCH_COMMIT);
            buf.extend_from_slice(&epoch.to_le_bytes());
        }
        Msg::EpochAck { epoch } => {
            buf.push(TAG_EPOCH_ACK);
            buf.extend_from_slice(&epoch.to_le_bytes());
        }
    }
}

/// Bounds-checked little-endian reader over a payload.
struct Rd<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let have = self.bytes.len() - self.pos;
        if have < n {
            return Err(ProtoError::Truncated { need: n, have });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

/// Decodes one payload. Every failure is a typed error; trailing bytes
/// are rejected (a frame carries exactly one message).
pub fn decode(payload: &[u8]) -> Result<Msg, ProtoError> {
    let mut rd = Rd {
        bytes: payload,
        pos: 0,
    };
    let msg = match rd.u8()? {
        TAG_SUBMIT => Msg::Submit {
            request: rd.u64()?,
            session: rd.u32()?,
            budget_us: rd.u64()?,
        },
        TAG_DONE => Msg::Done {
            request: rd.u64()?,
            verdict: verdict_from_wire(rd.u8()?)?,
            latency_us: rd.u64()?,
            retried: match rd.u8()? {
                0 => false,
                1 => true,
                _ => return Err(ProtoError::BadValue("retried")),
            },
        },
        TAG_EXEC => Msg::Exec {
            request: rd.u64()?,
            session: rd.u32()?,
            cost_us: rd.u64()?,
        },
        TAG_EXEC_DONE => Msg::ExecDone {
            request: rd.u64()?,
            ok: match rd.u8()? {
                0 => false,
                1 => true,
                _ => return Err(ProtoError::BadValue("ok")),
            },
        },
        TAG_PING => Msg::Ping { seq: rd.u64()? },
        TAG_PONG => Msg::Pong { seq: rd.u64()? },
        TAG_EPOCH_BEGIN => Msg::EpochBegin { epoch: rd.u64()? },
        TAG_EPOCH_ROUTE => {
            let session = rd.u32()?;
            let n = rd.u16()? as usize;
            let mut backends = Vec::with_capacity(n);
            for _ in 0..n {
                backends.push(rd.u32()?);
            }
            Msg::EpochRoute { session, backends }
        }
        TAG_EPOCH_COMMIT => Msg::EpochCommit { epoch: rd.u64()? },
        TAG_EPOCH_ACK => Msg::EpochAck { epoch: rd.u64()? },
        other => return Err(ProtoError::BadTag(other)),
    };
    if rd.pos != payload.len() {
        return Err(ProtoError::TrailingBytes {
            frame: payload.len(),
            used: rd.pos,
        });
    }
    Ok(msg)
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, msg: &Msg) -> Result<(), ProtoError> {
    let mut payload = Vec::with_capacity(32);
    encode(msg, &mut payload);
    let len = u32::try_from(payload.len()).expect("payload fits u32");
    debug_assert!(len <= MAX_FRAME);
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Consecutive read timeouts tolerated *mid-frame* before the frame is
/// declared dead. Idle timeouts (zero bytes of the frame read) surface
/// immediately so pollers can check their shutdown flags.
const MID_FRAME_STALL_LIMIT: u32 = 200;

/// Fills `buf` across short reads. With `idle_ok`, a timeout before the
/// first byte propagates as [`ProtoError::Io`] (the caller is polling);
/// once any byte has arrived the read resumes across timeouts — a frame
/// split across TCP segments must not desync the stream — up to
/// [`MID_FRAME_STALL_LIMIT`] consecutive stalls.
fn read_full(r: &mut impl Read, buf: &mut [u8], idle_ok: bool) -> Result<(), ProtoError> {
    let mut filled = 0;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(ProtoError::Io(std::io::ErrorKind::UnexpectedEof)),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if idle_ok && filled == 0 {
                    return Err(ProtoError::Io(e.kind()));
                }
                stalls += 1;
                if stalls >= MID_FRAME_STALL_LIMIT {
                    return Err(ProtoError::Io(std::io::ErrorKind::TimedOut));
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads one length-prefixed frame. A peer announcing more than
/// [`MAX_FRAME`] bytes is rejected before any allocation. A read-timeout
/// error with zero bytes consumed means "no frame yet" and leaves the
/// stream aligned; any later timeout is retried internally so a frame
/// straddling TCP segments cannot desync the connection.
pub fn read_frame(r: &mut impl Read) -> Result<Msg, ProtoError> {
    let mut head = [0u8; 4];
    read_full(r, &mut head, true)?;
    let len = u32::from_le_bytes(head);
    if len > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload, false)?;
    decode(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Msg> {
        vec![
            Msg::Submit {
                request: 7,
                session: 3,
                budget_us: 100_000,
            },
            Msg::Done {
                request: 7,
                verdict: Verdict::Completed,
                latency_us: 420,
                retried: true,
            },
            Msg::Done {
                request: 9,
                verdict: Verdict::Dropped(DropCause::AdmissionRejected),
                latency_us: 0,
                retried: false,
            },
            Msg::Exec {
                request: 7,
                session: 3,
                cost_us: 55_000,
            },
            Msg::ExecDone {
                request: 7,
                ok: true,
            },
            Msg::Ping { seq: 41 },
            Msg::Pong { seq: 41 },
            Msg::EpochBegin { epoch: 2 },
            Msg::EpochRoute {
                session: 3,
                backends: vec![0, 2, 5],
            },
            Msg::EpochRoute {
                session: 0,
                backends: vec![],
            },
            Msg::EpochCommit { epoch: 2 },
            Msg::EpochAck { epoch: 2 },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        let mut buf = Vec::new();
        for msg in all_messages() {
            encode(&msg, &mut buf);
            assert_eq!(decode(&buf).expect("round trip"), msg, "{msg:?}");
        }
    }

    #[test]
    fn every_truncated_prefix_is_a_typed_error() {
        let mut buf = Vec::new();
        for msg in all_messages() {
            encode(&msg, &mut buf);
            for cut in 0..buf.len() {
                match decode(&buf[..cut]) {
                    Err(ProtoError::Truncated { .. }) => {}
                    other => panic!("{msg:?} cut at {cut}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn bad_tags_and_values_are_rejected() {
        assert_eq!(decode(&[99]), Err(ProtoError::BadTag(99)));
        // A Done frame with an out-of-range verdict byte.
        let mut buf = Vec::new();
        encode(
            &Msg::Done {
                request: 1,
                verdict: Verdict::Completed,
                latency_us: 0,
                retried: false,
            },
            &mut buf,
        );
        buf[9] = 200;
        assert_eq!(decode(&buf), Err(ProtoError::BadValue("verdict")));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode(&Msg::Ping { seq: 1 }, &mut buf);
        buf.push(0);
        assert!(matches!(
            decode(&buf),
            Err(ProtoError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut wire = Vec::new();
        for msg in all_messages() {
            write_frame(&mut wire, &msg).expect("write");
        }
        let mut rd = &wire[..];
        for msg in all_messages() {
            assert_eq!(read_frame(&mut rd).expect("read"), msg);
        }
        // Stream exhausted: the next read is a clean EOF error, not a
        // panic.
        assert!(matches!(read_frame(&mut rd), Err(ProtoError::Io(_))));
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        wire.extend_from_slice(&[0; 16]);
        let mut rd = &wire[..];
        assert_eq!(
            read_frame(&mut rd),
            Err(ProtoError::FrameTooLarge(MAX_FRAME + 1))
        );
    }
}
