//! The smoke-and-chaos soak: real sockets, real threads, one verdict.
//!
//! The harness spawns a frontend and a set of backends on localhost,
//! drives paced traffic from many concurrent client connections, and —
//! mid-traffic — kills one backend and pushes a new routing epoch that
//! excludes it. It then holds the run to the front door's contract:
//!
//! - **accounting**: every submitted request came back exactly once,
//!   completed or dropped-with-cause (client-side and server-side
//!   counts must both close);
//! - **zero dropped epochs**: the applied-epoch sequence is exactly the
//!   pushed sequence, in order;
//! - **budget**: no completed request overran its deadline budget
//!   (retries must fit or be dropped);
//! - **clean shutdown**: every thread the harness started is joined
//!   before it returns.
//!
//! Both the `nexus-serve` binary and the CI chaos gate run this exact
//! code, so "works in CI" and "works from the command line" cannot
//! drift apart.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use nexus_profile::Micros;

use crate::admission::SessionSlo;
use crate::backend::{spawn_backend, BackendHandle, InstantModel};
use crate::frontend::{spawn_frontend, FrontendConfig, FrontendHandle, StatsSnapshot};
use crate::proto::{read_frame, write_frame, Msg, ProtoError, Verdict};
use crate::registry::RegistryConfig;

/// Soak parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Backends to spawn.
    pub backends: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Sessions to spread traffic over (round robin by request index).
    pub sessions: u32,
    /// Per-request deadline budget.
    pub budget: Micros,
    /// Gap between one client's consecutive submits.
    pub pacing: Duration,
    /// Kill this backend once half the traffic is in (None = no chaos).
    pub kill_backend: Option<usize>,
    /// After the kill, push epoch 2 excluding the killed backend.
    pub push_second_epoch: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            backends: 4,
            clients: 32,
            requests_per_client: 25,
            sessions: 2,
            budget: Micros::from_millis(250),
            pacing: Duration::from_millis(5),
            kill_backend: Some(0),
            push_second_epoch: true,
        }
    }
}

impl SoakConfig {
    /// The per-session SLO parameters the soak serves under. Generous
    /// relative to [`InstantModel`] execution so the admission gate only
    /// trips on genuine overload, not CI scheduling jitter.
    fn slo(&self) -> SessionSlo {
        SessionSlo {
            slo: self.budget,
            ell_min: Micros::from_micros(200),
            ell_b: Micros::from_micros(400),
            batch: 32,
        }
    }
}

/// What one soak run observed.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Frontend counters at the end of the run.
    pub stats: StatsSnapshot,
    /// Completions counted client-side (must match `stats.completed`).
    pub client_completed: u64,
    /// Drops counted client-side.
    pub client_dropped: u64,
    /// Client reads that failed (must be zero: every submit is answered).
    pub client_io_errors: u64,
    /// Epochs the frontend committed, in order.
    pub applied_epochs: Vec<u64>,
    /// Epochs the harness pushed, in order.
    pub pushed_epochs: Vec<u64>,
    /// Handler threads joined at frontend shutdown.
    pub frontend_handlers_joined: usize,
    /// Handler threads joined across backend shutdowns.
    pub backend_handlers_joined: usize,
}

impl SoakReport {
    /// The chaos-gate verdict. Returns the first violated clause, or
    /// `None` if the run passed.
    pub fn violation(&self) -> Option<String> {
        let s = &self.stats;
        if !s.accounted() {
            return Some(format!(
                "accounting leak: submitted {} != completed {} + dropped {}",
                s.submitted,
                s.completed,
                s.dropped()
            ));
        }
        if self.client_io_errors > 0 {
            return Some(format!(
                "{} client submits went unanswered",
                self.client_io_errors
            ));
        }
        if self.client_completed != s.completed || self.client_dropped != s.dropped() {
            return Some(format!(
                "client/server disagree: client saw {}/{} completed/dropped, \
                 server counted {}/{}",
                self.client_completed,
                self.client_dropped,
                s.completed,
                s.dropped()
            ));
        }
        if self.applied_epochs != self.pushed_epochs {
            return Some(format!(
                "dropped epochs: pushed {:?}, applied {:?}",
                self.pushed_epochs, self.applied_epochs
            ));
        }
        if s.budget_violations > 0 {
            return Some(format!(
                "{} completed requests overran their budget",
                s.budget_violations
            ));
        }
        if s.completed == 0 {
            return Some("nothing completed".into());
        }
        None
    }

    /// Whether the run passed every gate clause.
    pub fn passed(&self) -> bool {
        self.violation().is_none()
    }
}

/// Errors that abort a soak before the gate can even judge it.
#[derive(Debug)]
pub enum SoakError {
    /// Socket setup failed (bind, connect).
    Io(io::Error),
    /// The control connection could not push an epoch.
    Control(ProtoError),
}

impl From<io::Error> for SoakError {
    fn from(e: io::Error) -> Self {
        SoakError::Io(e)
    }
}

impl From<ProtoError> for SoakError {
    fn from(e: ProtoError) -> Self {
        SoakError::Control(e)
    }
}

impl std::fmt::Display for SoakError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoakError::Io(e) => write!(f, "soak i/o failure: {e}"),
            SoakError::Control(e) => write!(f, "epoch push failed: {e}"),
        }
    }
}

impl std::error::Error for SoakError {}

/// Pushes one full epoch over a fresh control connection and waits for
/// the ack.
fn push_epoch(
    frontend: &FrontendHandle,
    epoch: u64,
    sessions: u32,
    backends: &[u32],
) -> Result<(), SoakError> {
    let mut conn = TcpStream::connect(frontend.addr).map_err(SoakError::Io)?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(SoakError::Io)?;
    write_frame(&mut conn, &Msg::EpochBegin { epoch })?;
    for session in 0..sessions {
        write_frame(
            &mut conn,
            &Msg::EpochRoute {
                session,
                backends: backends.to_vec(),
            },
        )?;
    }
    write_frame(&mut conn, &Msg::EpochCommit { epoch })?;
    loop {
        match read_frame(&mut conn) {
            Ok(Msg::EpochAck { epoch: e }) if e == epoch => return Ok(()),
            Ok(_) => continue,
            Err(ProtoError::Io(io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)) => {
                return Err(SoakError::Control(ProtoError::Io(io::ErrorKind::TimedOut)))
            }
            Err(e) => return Err(SoakError::Control(e)),
        }
    }
}

struct ClientTally {
    completed: AtomicU64,
    dropped: AtomicU64,
    io_errors: AtomicU64,
    retried: AtomicU64,
}

fn client_loop(
    addr: std::net::SocketAddr,
    client_id: u64,
    cfg: &SoakConfig,
    tally: &ClientTally,
    start: &Barrier,
) {
    start.wait();
    let Ok(mut conn) = TcpStream::connect(addr) else {
        tally
            .io_errors
            .fetch_add(cfg.requests_per_client as u64, Ordering::SeqCst);
        return;
    };
    // Generous read timeout: the frontend answers within the budget plus
    // scheduling noise; a silent submit is exactly what the gate hunts.
    if conn
        .set_read_timeout(Some(Duration::from_secs(30)))
        .is_err()
    {
        tally
            .io_errors
            .fetch_add(cfg.requests_per_client as u64, Ordering::SeqCst);
        return;
    }
    for i in 0..cfg.requests_per_client {
        let request = (client_id << 32) | i as u64;
        let session = (i as u32) % cfg.sessions.max(1);
        let submit = Msg::Submit {
            request,
            session,
            budget_us: cfg.budget.as_micros(),
        };
        if write_frame(&mut conn, &submit).is_err() {
            tally.io_errors.fetch_add(1, Ordering::SeqCst);
            continue;
        }
        match read_frame(&mut conn) {
            Ok(Msg::Done {
                request: r,
                verdict,
                retried,
                ..
            }) if r == request => {
                match verdict {
                    Verdict::Completed => tally.completed.fetch_add(1, Ordering::SeqCst),
                    Verdict::Dropped(_) => tally.dropped.fetch_add(1, Ordering::SeqCst),
                };
                if retried {
                    tally.retried.fetch_add(1, Ordering::SeqCst);
                }
            }
            _ => {
                tally.io_errors.fetch_add(1, Ordering::SeqCst);
            }
        }
        thread::sleep(cfg.pacing);
    }
}

/// Runs one soak to completion and reports what happened. All spawned
/// threads are joined before this returns, pass or fail.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, SoakError> {
    assert!(cfg.backends >= 1, "need at least one backend");
    assert!(cfg.sessions >= 1, "need at least one session");

    let backends: Vec<BackendHandle> = (0..cfg.backends)
        .map(|_| spawn_backend(InstantModel))
        .collect::<io::Result<_>>()?;
    let slos = vec![cfg.slo(); cfg.sessions as usize];
    let frontend = spawn_frontend(FrontendConfig {
        backends: backends.iter().map(|b| b.addr).collect(),
        registry: RegistryConfig {
            probe_interval: Micros::from_millis(50),
            ..RegistryConfig::default()
        },
        sunset_grace: Micros::from_secs(1),
        slos,
    })?;

    // Epoch 1: every session on every backend.
    let all: Vec<u32> = (0..cfg.backends as u32).collect();
    push_epoch(&frontend, 1, cfg.sessions, &all)?;
    let mut pushed_epochs = vec![1u64];

    let tally = Arc::new(ClientTally {
        completed: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        io_errors: AtomicU64::new(0),
        retried: AtomicU64::new(0),
    });
    let start = Arc::new(Barrier::new(cfg.clients));
    let cfg_arc = Arc::new(cfg.clone());
    let addr = frontend.addr;
    let clients: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let tally = Arc::clone(&tally);
            let start = Arc::clone(&start);
            let cfg = Arc::clone(&cfg_arc);
            thread::Builder::new()
                .name(format!("soak-client-{c}"))
                .spawn(move || client_loop(addr, c as u64, &cfg, &tally, &start))
                .expect("spawn soak client")
        })
        .collect();

    // Chaos, landed mid-traffic: wait for half the submits, then kill
    // one backend and push the epoch that routes around it.
    if let Some(victim) = cfg.kill_backend {
        let half = (cfg.clients * cfg.requests_per_client) as u64 / 2;
        while frontend.stats().submitted < half {
            thread::sleep(Duration::from_millis(2));
        }
        backends[victim].kill();
        // Let traffic hit the corpse before the scheduler reacts: this
        // window is where the retry path and the prober's
        // healthy→suspect→dead walk earn their keep. Without it the
        // epoch push lands so fast nothing ever routes to the dead
        // backend.
        thread::sleep(Duration::from_millis(150));
        if cfg.push_second_epoch {
            let survivors: Vec<u32> = (0..cfg.backends as u32)
                .filter(|&b| b as usize != victim)
                .collect();
            push_epoch(&frontend, 2, cfg.sessions, &survivors)?;
            pushed_epochs.push(2);
        }
    }

    for c in clients {
        let _ = c.join();
    }

    let stats = frontend.stats();
    let applied_epochs = frontend.applied_epochs();
    let frontend_handlers_joined = frontend.shutdown();
    let backend_handlers_joined = backends.into_iter().map(BackendHandle::shutdown).sum();

    Ok(SoakReport {
        stats,
        client_completed: tally.completed.load(Ordering::SeqCst),
        client_dropped: tally.dropped.load(Ordering::SeqCst),
        client_io_errors: tally.io_errors.load(Ordering::SeqCst),
        applied_epochs,
        pushed_epochs,
        frontend_handlers_joined,
        backend_handlers_joined,
    })
}
