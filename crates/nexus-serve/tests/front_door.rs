//! End-to-end front-door tests over real localhost sockets: paced
//! multi-client traffic, a backend killed mid-run, a routing epoch
//! pushed mid-traffic, and the full accounting/shutdown contract.

use std::net::TcpStream;
use std::time::Duration;

use nexus_profile::Micros;
use nexus_serve::proto::{read_frame, write_frame, Msg, Verdict};
use nexus_serve::{run_soak, Liveness, SoakConfig};

#[test]
fn a_quiet_run_completes_everything_and_shuts_down_clean() {
    let report = run_soak(&SoakConfig {
        backends: 2,
        clients: 8,
        requests_per_client: 10,
        kill_backend: None,
        push_second_epoch: false,
        ..SoakConfig::default()
    })
    .expect("soak runs");
    assert!(report.passed(), "{:?}", report.violation());
    assert_eq!(report.stats.submitted, 80);
    assert_eq!(report.stats.completed, 80, "no chaos, no drops");
    assert_eq!(report.applied_epochs, vec![1]);
    assert_eq!(report.stats.budget_violations, 0);
}

#[test]
fn killing_a_backend_mid_traffic_keeps_every_request_accounted() {
    let report = run_soak(&SoakConfig {
        backends: 3,
        clients: 24,
        requests_per_client: 30,
        kill_backend: Some(1),
        push_second_epoch: true,
        ..SoakConfig::default()
    })
    .expect("soak runs");

    assert!(report.passed(), "{:?}", report.violation());
    // The epoch pushed mid-traffic landed, in order, with none dropped.
    assert_eq!(report.applied_epochs, vec![1, 2]);
    // Chaos really happened and the door held: the overwhelming majority
    // of requests completed (the kill window can strand at most the
    // requests in flight against the dead backend before detection).
    let s = &report.stats;
    assert!(
        s.completed as f64 >= 0.9 * s.submitted as f64,
        "completed {} of {}",
        s.completed,
        s.submitted
    );
    // Nothing that completed overran its budget — a retry either fit or
    // was dropped as Stranded.
    assert_eq!(s.budget_violations, 0);
}

#[test]
fn the_prober_walks_a_killed_backend_to_dead() {
    use nexus_serve::{
        spawn_backend, spawn_frontend, FrontendConfig, InstantModel, RegistryConfig, SessionSlo,
    };

    let backend = spawn_backend(InstantModel).expect("backend");
    let frontend = spawn_frontend(FrontendConfig {
        backends: vec![backend.addr],
        registry: RegistryConfig {
            probe_interval: Micros::from_millis(20),
            ..RegistryConfig::default()
        },
        sunset_grace: Micros::from_millis(100),
        slos: vec![SessionSlo {
            slo: Micros::from_millis(100),
            ell_min: Micros::from_micros(200),
            ell_b: Micros::from_micros(400),
            batch: 8,
        }],
    })
    .expect("frontend");

    // Healthy while the backend answers.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(frontend.liveness(0), Liveness::Healthy);

    // Kill it; within a few probe intervals the registry walks
    // Healthy → Suspect → Dead.
    backend.kill();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while frontend.liveness(0) != Liveness::Dead {
        assert!(
            std::time::Instant::now() < deadline,
            "backend never declared dead; stuck at {:?}",
            frontend.liveness(0)
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Every transition the prober recorded is an edge of the machine.
    let transitions = frontend.transitions();
    assert!(!transitions.is_empty());
    for t in &transitions {
        assert!(
            nexus_serve::registry::valid_edge(t.from, t.to),
            "invalid edge {t:?}"
        );
    }

    frontend.shutdown();
    backend.shutdown();
}

#[test]
fn submits_for_unknown_sessions_drop_with_no_route() {
    use nexus_serve::{
        spawn_backend, spawn_frontend, FrontendConfig, InstantModel, RegistryConfig, SessionSlo,
    };

    let backend = spawn_backend(InstantModel).expect("backend");
    let frontend = spawn_frontend(FrontendConfig {
        backends: vec![backend.addr],
        registry: RegistryConfig::default(),
        sunset_grace: Micros::from_millis(100),
        slos: vec![SessionSlo {
            slo: Micros::from_millis(100),
            ell_min: Micros::from_micros(200),
            ell_b: Micros::from_micros(400),
            batch: 8,
        }],
    })
    .expect("frontend");

    let mut conn = TcpStream::connect(frontend.addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // Session 7 exists in no SLO table and no routing table.
    write_frame(
        &mut conn,
        &Msg::Submit {
            request: 1,
            session: 7,
            budget_us: 100_000,
        },
    )
    .expect("submit");
    match read_frame(&mut conn).expect("done") {
        Msg::Done {
            request: 1,
            verdict: Verdict::Dropped(cause),
            retried: false,
            ..
        } => assert_eq!(cause, nexus_runtime::DropCause::NoRoute),
        other => panic!("unexpected reply: {other:?}"),
    }
    // A known session with no routing table yet is also NoRoute: the
    // frontend has not been given epoch 1.
    write_frame(
        &mut conn,
        &Msg::Submit {
            request: 2,
            session: 0,
            budget_us: 100_000,
        },
    )
    .expect("submit");
    match read_frame(&mut conn).expect("done") {
        Msg::Done {
            request: 2,
            verdict: Verdict::Dropped(cause),
            ..
        } => assert_eq!(cause, nexus_runtime::DropCause::NoRoute),
        other => panic!("unexpected reply: {other:?}"),
    }

    let stats = frontend.stats();
    assert!(stats.accounted());
    assert_eq!(stats.completed, 0);
    drop(conn);
    frontend.shutdown();
    backend.shutdown();
}
