//! End-to-end acceptance: tracing a Fig. 13 mini-run produces a valid
//! Chrome-trace export and a losslessly round-tripping trace file.

use nexus_obs::{chrome_trace, raw, reconstruct, validate_chrome_trace, Json};
use nexus_profile::{Micros, GPU_K80};
use nexus_runtime::{SystemConfig, TraceEvent};

fn fig13_mini() -> nexus_runtime::SimResult {
    let warmup = Micros::from_secs(2);
    let horizon = Micros::from_secs(3) + warmup;
    nexus::run_traced(
        SystemConfig::nexus().with_epoch(Micros::from_secs(2)),
        GPU_K80,
        4,
        nexus::workloads::fig13_classes(horizon, 0.05),
        42,
        warmup,
        horizon,
        1 << 20,
    )
}

#[test]
fn fig13_mini_run_exports_valid_chrome_trace() {
    let result = fig13_mini();
    let trace = result.trace.as_ref().expect("tracing enabled");
    assert!(
        !trace.events().is_empty(),
        "a loaded fig13 run must record events"
    );
    assert_eq!(result.trace_truncated, 0, "capacity sized for the mini run");

    let doc = chrome_trace(trace.events());
    validate_chrome_trace(&doc).expect("export is valid Chrome-trace JSON");

    // The document survives its own serialization, and contains at least
    // one GPU slice and one request span.
    let text = doc.to_string();
    let back = nexus_obs::parse_json(&text).expect("export re-parses");
    validate_chrome_trace(&back).expect("still valid after round-trip");
    let events = back.get("traceEvents").unwrap().as_array().unwrap();
    let has_ph = |ph: &str| {
        events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
    };
    assert!(has_ph("X"), "no batch slices in export");
    assert!(has_ph("b") && has_ph("e"), "no request spans in export");
    assert!(has_ph("M"), "no track metadata in export");
}

#[test]
fn fig13_mini_trace_file_round_trips() {
    let result = fig13_mini();
    let trace = result.trace.as_ref().unwrap();
    let text = raw::encode(trace.events(), trace.truncated, None).to_string();
    let back = raw::decode(&nexus_obs::parse_json(&text).unwrap()).unwrap();
    assert_eq!(back.events, trace.events());

    // Phase spans reconstructed from the decoded file partition every
    // completed request's lifetime exactly.
    let ph = reconstruct(&back.events);
    assert!(!ph.spans.is_empty());
    for span in &ph.spans {
        assert_eq!(span.queue_wait() + span.exec(), span.total());
        assert!(span.arrival <= span.exec_start && span.exec_start <= span.completion);
    }
    // Completions reference batches recorded in the same capture.
    let batch_seqs: std::collections::BTreeSet<u64> = back
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Batch { seq, .. } => Some(*seq),
            _ => None,
        })
        .collect();
    for span in &ph.spans {
        assert!(
            batch_seqs.contains(&span.batch_seq),
            "completion references unrecorded batch {}",
            span.batch_seq
        );
    }
}

/// The schema-golden check: the fixed-seed mini-run must reproduce the
/// committed golden capture byte-for-byte. This pins both the simulation's
/// determinism and the trace file schema; CI runs the same comparison via
/// `nexus-trace capture --golden` + `nexus-trace diff`.
#[test]
fn capture_matches_committed_golden() {
    let golden = include_str!("golden/fig13_mini.trace.json");
    let result = fig13_mini();
    let trace = result.trace.as_ref().unwrap();
    // The same metadata `nexus-trace capture --golden` stamps on the file.
    let meta = Json::Object(vec![
        ("workload".to_string(), Json::Str("fig13".to_string())),
        ("seed".to_string(), Json::UInt(42)),
        ("secs".to_string(), Json::UInt(3)),
        ("gpus".to_string(), Json::UInt(4)),
        ("scale".to_string(), Json::Float(0.05)),
    ]);
    let text = raw::encode(trace.events(), trace.truncated, Some(meta)).to_string();
    assert!(
        text == golden,
        "fixed-seed mini-run diverged from the committed golden \
         ({} vs {} bytes); if the schema or simulation change is \
         intentional, regenerate with `cargo run -p nexus-obs --bin \
         nexus-trace -- capture --golden --out \
         crates/nexus-obs/tests/golden/fig13_mini.trace.json`",
        text.len(),
        golden.len()
    );
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let traced = fig13_mini();
    let warmup = Micros::from_secs(2);
    let horizon = Micros::from_secs(3) + warmup;
    let plain = nexus::run_once(
        SystemConfig::nexus().with_epoch(Micros::from_secs(2)),
        GPU_K80,
        4,
        nexus::workloads::fig13_classes(horizon, 0.05),
        42,
        warmup,
        horizon,
    );
    assert_eq!(plain.events_processed, traced.events_processed);
    assert_eq!(plain.queries_finished, traced.queries_finished);
    assert_eq!(plain.query_bad_rate, traced.query_bad_rate);
    assert!(plain.trace.is_none());
    assert_eq!(plain.trace_truncated, 0);
}
