//! Fuzz-ish robustness gate for the trace decode pipeline: every prefix
//! and bit-flipped variant of the committed golden capture must come back
//! as a typed error (or, when the mutation happens to keep the document
//! well-formed, a successfully decoded file) — never a panic. The decode
//! path is used on operator-supplied files by the `nexus-trace` CLI, so
//! "garbage in, panic out" is a usability bug.

use nexus_obs::{parse_json, raw, reconstruct};

const GOLDEN: &str = include_str!("golden/fig13_mini.trace.json");

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Parse → decode → reconstruct, asserting the pipeline never panics on
/// `text`. Returns whether the full pipeline succeeded.
fn pipeline_survives(text: &str) -> bool {
    let Ok(doc) = parse_json(text) else {
        return false;
    };
    let Ok(file) = raw::decode(&doc) else {
        return false;
    };
    // Phase reconstruction must tolerate whatever decoded — a mutated
    // latency can put arrival "after" completion.
    let ph = reconstruct(&file.events);
    for s in &ph.spans {
        // The partition identity holds even for clamped corrupt spans.
        assert_eq!(s.queue_wait() + s.exec(), s.total());
    }
    true
}

#[test]
fn every_truncated_prefix_is_a_typed_error() {
    let bytes = GOLDEN.as_bytes();
    assert!(bytes.len() > 4_096, "golden trace unexpectedly small");
    // Every short prefix (the hand-written parser's trickiest region),
    // then a prime stride across the body, then every suffix cut near the
    // end (mid-token truncation of the final events).
    let mut cuts: Vec<usize> = (0..512.min(bytes.len())).collect();
    cuts.extend((512..bytes.len()).step_by(97));
    cuts.extend(bytes.len().saturating_sub(256)..bytes.len());
    for cut in cuts {
        let prefix = std::str::from_utf8(&bytes[..cut]).expect("golden is ASCII");
        // Cutting only trailing whitespace leaves a complete document;
        // any cut that removes structure must surface as a typed error.
        let material = bytes[cut..].iter().any(|b| !b.is_ascii_whitespace());
        if material {
            assert!(
                !pipeline_survives(prefix),
                "truncated prefix of {cut} bytes decoded as a complete file"
            );
        } else {
            let _ = pipeline_survives(prefix);
        }
    }
    // The untruncated file still decodes, proving the harness exercises
    // the success path too.
    assert!(pipeline_survives(GOLDEN));
}

#[test]
fn bit_flipped_traces_never_panic_the_decoder() {
    let mut state = 0x5eed_cafe_f00d_u64;
    for _ in 0..2_000 {
        let mut bytes = GOLDEN.as_bytes().to_vec();
        // Flip 1–4 bytes at random positions.
        let flips = 1 + (splitmix64(&mut state) % 4) as usize;
        for _ in 0..flips {
            let pos = (splitmix64(&mut state) % bytes.len() as u64) as usize;
            bytes[pos] ^= (splitmix64(&mut state) % 255 + 1) as u8;
        }
        // Flips can break UTF-8; the CLI reads files lossily the same way.
        let text = String::from_utf8_lossy(&bytes);
        // Success is allowed (a digit flipped to another digit still
        // decodes); panicking is not — the assert inside the pipeline
        // checks decoded spans stay consistent either way.
        let _ = pipeline_survives(&text);
    }
}
