//! Trace tooling for the Nexus reproduction.
//!
//! ```text
//! nexus-trace capture   --out FILE [--seed N --secs N --gpus N --scale F
//!                       --capacity N | --golden]
//! nexus-trace export    --input FILE --out FILE
//! nexus-trace summarize --input FILE
//! nexus-trace diff      FILE FILE
//! ```
//!
//! `capture` runs the Fig. 13 deployment workload (scaled down) with
//! tracing enabled and writes the versioned trace file; `export` converts a
//! trace file to Chrome-trace JSON loadable in Perfetto; `summarize` prints
//! phase statistics; `diff` compares two trace files structurally and exits
//! non-zero on divergence (the CI schema-golden check).

use std::path::PathBuf;
use std::process::exit;

use nexus_obs::json::Json;
use nexus_obs::{chrome_trace, phase_stats, raw, reconstruct, summary, validate_chrome_trace};
use nexus_profile::{Micros, GPU_K80};
use nexus_runtime::{SystemConfig, TraceEvent};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(1);
}

fn usage() -> ! {
    fail(
        "usage: nexus-trace capture --out FILE [--seed N --secs N --gpus N \
         --scale F --capacity N | --golden]\n\
         \x20      nexus-trace export --input FILE --out FILE\n\
         \x20      nexus-trace summarize --input FILE\n\
         \x20      nexus-trace diff FILE FILE",
    )
}

fn read_trace(path: &PathBuf) -> raw::TraceFile {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read {path:?}: {e}")));
    let doc =
        nexus_obs::parse_json(&text).unwrap_or_else(|e| fail(format!("{}: {e}", path.display())));
    raw::decode(&doc).unwrap_or_else(|e| fail(format!("{}: {e}", path.display())))
}

struct CaptureOpts {
    out: PathBuf,
    seed: u64,
    secs: u64,
    gpus: u32,
    scale: f64,
    capacity: usize,
}

/// The fixed mini-run behind the committed golden trace. Changing any of
/// these values (or the trace schema) requires regenerating the golden —
/// see DESIGN.md §12.
const GOLDEN: (u64, u64, u32, f64, usize) = (42, 3, 4, 0.05, 1 << 20);

fn capture(mut args: std::env::Args) {
    let mut opts = CaptureOpts {
        out: PathBuf::new(),
        seed: 42,
        secs: 5,
        gpus: 8,
        scale: 0.1,
        capacity: 2_000_000,
    };
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(format!("{what} needs a value")))
        };
        match a.as_str() {
            "--out" => opts.out = PathBuf::from(next("--out")),
            "--seed" => opts.seed = next("--seed").parse().unwrap_or_else(|e| fail(e)),
            "--secs" => opts.secs = next("--secs").parse().unwrap_or_else(|e| fail(e)),
            "--gpus" => opts.gpus = next("--gpus").parse().unwrap_or_else(|e| fail(e)),
            "--scale" => opts.scale = next("--scale").parse().unwrap_or_else(|e| fail(e)),
            "--capacity" => opts.capacity = next("--capacity").parse().unwrap_or_else(|e| fail(e)),
            "--golden" => {
                (opts.seed, opts.secs, opts.gpus, opts.scale, opts.capacity) = GOLDEN;
            }
            _ => usage(),
        }
    }
    if opts.out.as_os_str().is_empty() {
        fail("capture requires --out FILE");
    }

    let warmup = Micros::from_secs(2);
    let horizon = Micros::from_secs(opts.secs) + warmup;
    let classes = nexus::workloads::fig13_classes(horizon, opts.scale);
    let result = nexus::run_traced(
        SystemConfig::nexus().with_epoch(Micros::from_secs(2)),
        GPU_K80,
        opts.gpus,
        classes,
        opts.seed,
        warmup,
        horizon,
        opts.capacity,
    );
    let trace = result
        .trace
        .as_ref()
        .unwrap_or_else(|| fail("capture produced no trace"));
    let meta = Json::Object(vec![
        ("workload".to_string(), Json::Str("fig13".to_string())),
        ("seed".to_string(), Json::UInt(opts.seed)),
        ("secs".to_string(), Json::UInt(opts.secs)),
        ("gpus".to_string(), Json::UInt(u64::from(opts.gpus))),
        ("scale".to_string(), Json::Float(opts.scale)),
    ]);
    let doc = raw::encode(trace.events(), trace.truncated, Some(meta));
    std::fs::write(&opts.out, doc.to_string())
        .unwrap_or_else(|e| fail(format!("cannot write {:?}: {e}", opts.out)));
    print!("{}", summary::render(&result));
    if result.trace_truncated > 0 {
        eprintln!(
            "warning: {} trace events truncated (raise --capacity)",
            result.trace_truncated
        );
    }
    println!(
        "(wrote {} events to {})",
        trace.events().len(),
        opts.out.display()
    );
}

fn export(input: PathBuf, out: PathBuf) {
    let file = read_trace(&input);
    if file.truncated > 0 {
        eprintln!(
            "warning: source capture truncated {} events; the export is incomplete",
            file.truncated
        );
    }
    let doc = chrome_trace(&file.events);
    validate_chrome_trace(&doc).unwrap_or_else(|e| fail(format!("internal: invalid export: {e}")));
    std::fs::write(&out, doc.to_string())
        .unwrap_or_else(|e| fail(format!("cannot write {out:?}: {e}")));
    println!(
        "(wrote Chrome-trace JSON for {} events to {}; open in ui.perfetto.dev)",
        file.events.len(),
        out.display()
    );
}

fn summarize(input: PathBuf) {
    let file = read_trace(&input);
    let ph = reconstruct(&file.events);
    let queue = phase_stats(
        ph.spans
            .iter()
            .map(|s| s.queue_wait().as_micros())
            .collect(),
    );
    let exec = phase_stats(ph.spans.iter().map(|s| s.exec().as_micros()).collect());
    let total = phase_stats(ph.spans.iter().map(|s| s.total().as_micros()).collect());
    let good = ph.spans.iter().filter(|s| s.good).count();
    println!("events      : {}", file.events.len());
    println!(
        "completions : {} ({:.2}% within SLO)",
        ph.spans.len(),
        if ph.spans.is_empty() {
            100.0
        } else {
            good as f64 / ph.spans.len() as f64 * 100.0
        }
    );
    println!("drops       : {}", ph.drops.len());
    let ms = |us: u64| us as f64 / 1_000.0;
    println!(
        "queue wait  : p50 {:.2} ms  p99 {:.2} ms  mean {:.2} ms",
        ms(queue.p50),
        ms(queue.p99),
        queue.mean / 1_000.0
    );
    println!(
        "execution   : p50 {:.2} ms  p99 {:.2} ms  mean {:.2} ms",
        ms(exec.p50),
        ms(exec.p99),
        exec.mean / 1_000.0
    );
    println!(
        "total       : p50 {:.2} ms  p99 {:.2} ms  mean {:.2} ms",
        ms(total.p50),
        ms(total.p99),
        total.mean / 1_000.0
    );
    if file.truncated > 0 {
        println!(
            "WARNING     : capture truncated ({} events discarded)",
            file.truncated
        );
    }
}

fn describe(e: &TraceEvent) -> String {
    format!("{e:?}")
}

fn diff(a_path: PathBuf, b_path: PathBuf) {
    let a = read_trace(&a_path);
    let b = read_trace(&b_path);
    let mut diverged = false;
    if a.truncated != b.truncated {
        println!("truncated: {} vs {}", a.truncated, b.truncated);
        diverged = true;
    }
    if a.events.len() != b.events.len() {
        println!("event count: {} vs {}", a.events.len(), b.events.len());
        diverged = true;
    }
    for (i, (ea, eb)) in a.events.iter().zip(&b.events).enumerate() {
        if ea != eb {
            println!("first divergence at event {i}:");
            println!("  {}: {}", a_path.display(), describe(ea));
            println!("  {}: {}", b_path.display(), describe(eb));
            diverged = true;
            break;
        }
    }
    if diverged {
        exit(1);
    }
    println!(
        "traces identical ({} events, {} truncated)",
        a.events.len(),
        a.truncated
    );
}

fn main() {
    let mut args = std::env::args();
    let _bin = args.next();
    match args.next().as_deref() {
        Some("capture") => capture(args),
        Some("export") => {
            let (mut input, mut out) = (None, None);
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--input" => input = args.next().map(PathBuf::from),
                    "--out" => out = args.next().map(PathBuf::from),
                    _ => usage(),
                }
            }
            match (input, out) {
                (Some(i), Some(o)) => export(i, o),
                _ => usage(),
            }
        }
        Some("summarize") => {
            let mut input = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--input" => input = args.next().map(PathBuf::from),
                    _ => usage(),
                }
            }
            match input {
                Some(i) => summarize(i),
                None => usage(),
            }
        }
        Some("diff") => {
            let (a, b) = (
                args.next().map(PathBuf::from),
                args.next().map(PathBuf::from),
            );
            match (a, b) {
                (Some(a), Some(b)) => diff(a, b),
                _ => usage(),
            }
        }
        _ => usage(),
    }
}
