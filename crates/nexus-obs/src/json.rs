//! A small self-contained JSON value, writer, and parser.
//!
//! The trace file format and the Chrome-trace export must round-trip
//! through real JSON in every build environment, including ones where the
//! workspace's `serde_json` is replaced by a stub. Hand-rolling ~300 lines
//! here keeps the observability layer dependency-free; the writer is
//! deterministic (object keys keep insertion order) so exported files are
//! byte-stable across runs, which the golden-trace CI check relies on.

use std::fmt::Write as _;

/// A JSON value.
///
/// Numbers keep their lexical class: integers parse to [`Json::UInt`] /
/// [`Json::Int`] (never losing u64 precision to an f64), everything with a
/// fraction or exponent to [`Json::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys are not rejected.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an f64 (any number class).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Appends compact JSON to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// `to_string()` serializes to compact JSON.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Floats print via Rust's shortest round-trip formatting, with a `.0`
/// appended to integral values so they re-parse as floats (class-stable).
fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; null is the least-bad lossy encoding.
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not expected in our own output;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::Object(vec![
            ("a".into(), Json::UInt(u64::MAX)),
            ("b".into(), Json::Int(-3)),
            ("c".into(), Json::Float(1.5)),
            (
                "d".into(),
                Json::Array(vec![
                    Json::Null,
                    Json::Bool(true),
                    Json::Str("x\"\n".into()),
                ]),
            ),
            ("e".into(), Json::Object(vec![])),
        ]);
        let s = v.to_string();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn u64_precision_is_preserved() {
        let s = format!("{}", u64::MAX);
        assert_eq!(parse(&s).unwrap(), Json::UInt(u64::MAX));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Json::Float(2.0);
        let s = v.to_string();
        assert_eq!(s, "2.0");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"k\" : [ 1 , \"a\\u0041b\" ] } ").unwrap();
        assert_eq!(
            v.get("k").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            v.get("k").unwrap().as_array().unwrap()[1].as_str(),
            Some("aAb")
        );
    }
}
