//! Prometheus text exposition (version 0.0.4) of a run's metrics.
//!
//! One call renders a [`SimResult`] as the plain-text format a Prometheus
//! scrape returns: `# HELP` / `# TYPE` headers followed by labeled samples.
//! Intended for piping into pushgateway-style tooling or for diffing runs.

use std::fmt::Write as _;

use nexus_runtime::{DropCause, SimResult, TraceEvent};

/// Every drop cause, in a fixed exposition order so scrape output is
/// byte-stable run to run (absent causes render as explicit zeros).
const ALL_CAUSES: [DropCause; 7] = [
    DropCause::NoRoute,
    DropCause::EarlySacrifice,
    DropCause::Expired,
    DropCause::Orphaned,
    DropCause::Stranded,
    DropCause::RunEnd,
    DropCause::AdmissionRejected,
];

/// Occupancy histogram bucket upper bounds (`le` labels).
const OCC_BUCKETS: [&str; 4] = ["0.25", "0.5", "0.75", "1"];

/// Per-rung occupancy accumulator for the histogram exposition.
struct RungStats {
    rung: u32,
    buckets: [u64; 4],
    count: u64,
    sum: f64,
    leftovers: u64,
}

impl RungStats {
    fn new(rung: u32) -> Self {
        RungStats {
            rung,
            buckets: [0; 4],
            count: 0,
            sum: 0.0,
            leftovers: 0,
        }
    }

    fn record(&mut self, occ: f64, leftover: bool) {
        let idx = if occ <= 0.25 {
            0
        } else if occ <= 0.5 {
            1
        } else if occ <= 0.75 {
            2
        } else {
            3
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += occ;
        self.leftovers += u64::from(leftover);
    }
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

fn counter_header(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
}

fn gauge_header(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
}

/// Renders the run's metrics in Prometheus text exposition format.
pub fn render(result: &SimResult) -> String {
    let mut out = String::new();

    gauge(
        &mut out,
        "nexus_query_bad_rate",
        "Fraction of window queries dropped or past deadline.",
        result.query_bad_rate,
    );
    gauge(
        &mut out,
        "nexus_request_bad_rate",
        "Fraction of window requests late or dropped.",
        result.request_bad_rate,
    );
    gauge(
        &mut out,
        "nexus_query_goodput",
        "Good queries per second over the measurement window.",
        result.query_goodput,
    );
    gauge(
        &mut out,
        "nexus_mean_gpus",
        "Mean GPUs allocated over the run.",
        result.mean_gpus,
    );
    gauge(
        &mut out,
        "nexus_gpu_utilization",
        "Aggregate GPU busy time over allocated GPU-seconds.",
        result.gpu_utilization,
    );

    counter_header(
        &mut out,
        "nexus_queries_finished_total",
        "Window queries that reached a terminal state.",
    );
    let _ = writeln!(
        out,
        "nexus_queries_finished_total {}",
        result.queries_finished
    );
    counter_header(
        &mut out,
        "nexus_events_processed_total",
        "Discrete events processed by the simulation engine.",
    );
    let _ = writeln!(
        out,
        "nexus_events_processed_total {}",
        result.events_processed
    );
    counter_header(
        &mut out,
        "nexus_trace_truncated_total",
        "Trace events discarded after the capture buffer filled.",
    );
    let _ = writeln!(
        out,
        "nexus_trace_truncated_total {}",
        result.trace_truncated
    );

    // Drop-cause and retry counters come from the trace; without one the
    // section is omitted (the counts are unknowable, not zero).
    if let Some(trace) = &result.trace {
        let mut by_cause = [0u64; ALL_CAUSES.len()];
        let mut retries = 0u64;
        for ev in trace.events() {
            match ev {
                TraceEvent::Drop { cause, .. } => {
                    if let Some(i) = ALL_CAUSES.iter().position(|c| c == cause) {
                        by_cause[i] += 1;
                    }
                }
                TraceEvent::Retry { .. } => retries += 1,
                _ => {}
            }
        }
        counter_header(
            &mut out,
            "nexus_drops_total",
            "Dropped requests by cause (edge admission rejects included).",
        );
        for (cause, n) in ALL_CAUSES.iter().zip(by_cause) {
            let _ = writeln!(
                out,
                "nexus_drops_total{{cause=\"{}\"}} {n}",
                crate::raw::drop_cause_name(*cause)
            );
        }
        counter_header(
            &mut out,
            "nexus_retries_total",
            "Requests re-dispatched to a different backend after a failure.",
        );
        let _ = writeln!(out, "nexus_retries_total {retries}");

        // Per-rung occupancy histogram: how full each executed ladder
        // shape ran (size/rung). Classic execution reports rung == size,
        // so everything lands in the top bucket; under-filled tail
        // minibatches of ladder execution show up in the lower buckets.
        let mut rungs: Vec<RungStats> = Vec::new();
        for ev in trace.events() {
            if let TraceEvent::Batch {
                size,
                rung,
                leftover,
                ..
            } = ev
            {
                let r = (*rung).max(1);
                let idx = match rungs.binary_search_by_key(&r, |s| s.rung) {
                    Ok(i) => i,
                    Err(i) => {
                        rungs.insert(i, RungStats::new(r));
                        i
                    }
                };
                rungs[idx].record(f64::from(*size) / f64::from(r), *leftover);
            }
        }
        if !rungs.is_empty() {
            let _ = writeln!(
                out,
                "# HELP nexus_rung_occupancy Executed minibatch occupancy (size/rung) per ladder rung."
            );
            let _ = writeln!(out, "# TYPE nexus_rung_occupancy histogram");
            for s in &rungs {
                let mut cum = 0u64;
                for (le, n) in OCC_BUCKETS.iter().zip(s.buckets) {
                    cum += n;
                    let _ = writeln!(
                        out,
                        "nexus_rung_occupancy_bucket{{rung=\"{}\",le=\"{le}\"}} {cum}",
                        s.rung
                    );
                }
                let _ = writeln!(
                    out,
                    "nexus_rung_occupancy_bucket{{rung=\"{}\",le=\"+Inf\"}} {}",
                    s.rung, s.count
                );
                let _ = writeln!(
                    out,
                    "nexus_rung_occupancy_sum{{rung=\"{}\"}} {}",
                    s.rung, s.sum
                );
                let _ = writeln!(
                    out,
                    "nexus_rung_occupancy_count{{rung=\"{}\"}} {}",
                    s.rung, s.count
                );
            }
            counter_header(
                &mut out,
                "nexus_rung_leftover_total",
                "Leftover minibatches (after the first in a slot's rung-fill sequence) per rung.",
            );
            for s in &rungs {
                let _ = writeln!(
                    out,
                    "nexus_rung_leftover_total{{rung=\"{}\"}} {}",
                    s.rung, s.leftovers
                );
            }
        }
    }

    gauge_header(
        &mut out,
        "nexus_session_bad_rate",
        "Per-session late-or-dropped fraction.",
    );
    for (id, m) in result.metrics.sessions() {
        let _ = writeln!(
            out,
            "nexus_session_bad_rate{{session=\"{}\"}} {}",
            id.0,
            m.bad_rate()
        );
    }

    gauge_header(
        &mut out,
        "nexus_session_latency_us",
        "Per-session completion latency quantiles, microseconds.",
    );
    for (id, m) in result.metrics.sessions() {
        for (label, q) in [("0.5", 0.5), ("0.99", 0.99)] {
            if let Some(v) = m.latency_quantile(q) {
                let _ = writeln!(
                    out,
                    "nexus_session_latency_us{{session=\"{}\",quantile=\"{label}\"}} {}",
                    id.0,
                    v.as_micros()
                );
            }
        }
    }

    gauge_header(
        &mut out,
        "nexus_gpu_busy_fraction",
        "Measured per-GPU busy fraction since the last deployment swap.",
    );
    for occ in &result.gpu_occupancy {
        let _ = writeln!(
            out,
            "nexus_gpu_busy_fraction{{backend=\"{}\",pool=\"{}\"}} {}",
            occ.backend, occ.pool, occ.busy_frac
        );
    }
    gauge_header(
        &mut out,
        "nexus_gpu_planned_fraction",
        "Squishy-plan predicted duty-cycle occupancy per GPU.",
    );
    for occ in &result.gpu_occupancy {
        let _ = writeln!(
            out,
            "nexus_gpu_planned_fraction{{backend=\"{}\",pool=\"{}\"}} {}",
            occ.backend, occ.pool, occ.planned_frac
        );
    }

    // Per-device-pool rollups (a homogeneous fleet exposes one pool).
    gauge_header(
        &mut out,
        "nexus_pool_backends",
        "Backends deployed per device pool at the end of the run.",
    );
    for p in &result.pool_stats {
        let _ = writeln!(
            out,
            "nexus_pool_backends{{pool=\"{}\",device=\"{}\"}} {}",
            p.pool, p.device, p.backends
        );
    }
    gauge_header(
        &mut out,
        "nexus_pool_busy_fraction",
        "Mean measured busy fraction across a pool's backends.",
    );
    for p in &result.pool_stats {
        let _ = writeln!(
            out,
            "nexus_pool_busy_fraction{{pool=\"{}\",device=\"{}\"}} {}",
            p.pool, p.device, p.busy_frac
        );
    }
    gauge_header(
        &mut out,
        "nexus_pool_request_goodput",
        "Good request completions per second on a pool's sessions (run-wide).",
    );
    for p in &result.pool_stats {
        let _ = writeln!(
            out,
            "nexus_pool_request_goodput{{pool=\"{}\",device=\"{}\"}} {}",
            p.pool, p.device, p.request_goodput
        );
    }
    gauge_header(
        &mut out,
        "nexus_pool_request_bad_rate",
        "Late-or-dropped fraction of a pool's terminal requests.",
    );
    for p in &result.pool_stats {
        let _ = writeln!(
            out,
            "nexus_pool_request_bad_rate{{pool=\"{}\",device=\"{}\"}} {}",
            p.pool, p.device, p.request_bad_rate
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_profile::{Micros, GPU_GTX1080TI};
    use nexus_runtime::{SystemConfig, TrafficClass};
    use nexus_workload::{apps, ArrivalKind};

    #[test]
    fn exposition_is_well_formed() {
        let result = nexus::run_traced(
            SystemConfig::nexus(),
            GPU_GTX1080TI,
            2,
            vec![TrafficClass::new(
                apps::traffic(),
                ArrivalKind::Uniform,
                30.0,
            )],
            1,
            Micros::from_secs(2),
            Micros::from_secs(6),
            1 << 16,
        );
        let text = render(&result);
        let mut samples = 0;
        for line in text.lines() {
            if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
                continue;
            }
            // Every sample line: <name>[{labels}] <float>
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty());
            value.parse::<f64>().expect("numeric value");
            samples += 1;
        }
        assert!(samples >= 8, "got {samples} samples:\n{text}");
        assert!(text.contains("nexus_gpu_busy_fraction{backend=\"0\",pool=\"0\"}"));
        // A homogeneous run still exposes its single pool's rollup.
        assert!(text.contains("nexus_pool_backends{pool=\"0\",device=\"NVIDIA GTX 1080Ti\"}"));
        assert!(text.contains("nexus_pool_request_goodput{pool=\"0\""));
        // With a trace attached, every drop cause gets an explicit row
        // (zeros included) plus the retry counter.
        assert!(text.contains("nexus_drops_total{cause=\"AdmissionRejected\"}"));
        assert!(text.contains("nexus_drops_total{cause=\"Expired\"}"));
        assert!(text.contains("nexus_retries_total"));
        // The run executes batches, so the per-rung occupancy histogram
        // renders with the Prometheus histogram invariants: cumulative
        // buckets topped by +Inf == count, occupancy never above 1.
        assert!(text.contains("nexus_rung_occupancy_bucket{"));
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("nexus_rung_occupancy_count{rung=\"") {
                let (rung, count) = rest.split_once("\"} ").expect("count sample");
                let inf =
                    format!("nexus_rung_occupancy_bucket{{rung=\"{rung}\",le=\"+Inf\"}} {count}");
                let top =
                    format!("nexus_rung_occupancy_bucket{{rung=\"{rung}\",le=\"1\"}} {count}");
                assert!(text.contains(&inf), "missing {inf}");
                assert!(text.contains(&top), "occupancy above 1 for rung {rung}");
            }
        }
        assert!(text.contains("nexus_rung_leftover_total{"));
    }

    #[test]
    fn drop_and_retry_counters_require_a_trace() {
        let result = nexus::run_once(
            SystemConfig::nexus(),
            GPU_GTX1080TI,
            2,
            vec![TrafficClass::new(
                apps::traffic(),
                ArrivalKind::Uniform,
                30.0,
            )],
            1,
            Micros::from_secs(1),
            Micros::from_secs(3),
        );
        let text = render(&result);
        assert!(!text.contains("nexus_drops_total"));
        assert!(!text.contains("nexus_retries_total"));
    }
}
