//! The on-disk trace file format: a versioned JSON encoding of
//! [`TraceEvent`] streams that round-trips losslessly.
//!
//! Layout (`schema` = [`SCHEMA_VERSION`]):
//!
//! ```json
//! {
//!   "schema": 2,
//!   "truncated": 0,
//!   "meta": { ... },            // free-form capture provenance
//!   "events": [ {"Arrival": {"t": 12, "request": 0, "session": 3}}, ... ]
//! }
//! ```
//!
//! Events use externally-tagged variants with field names matching the
//! `TraceEvent` declaration, so files written here match what a
//! serde_json-serialized `Trace` would contain.

use nexus_profile::Micros;
use nexus_runtime::{DropCause, TraceEvent};
use nexus_scheduler::SessionId;
use nexus_simgpu::FaultKind;

use crate::json::Json;

/// Version stamp written into every trace file; bump on any event-schema
/// change so `nexus-trace` can reject files it would misread.
pub const SCHEMA_VERSION: u64 = 2;

/// A trace-file decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

fn err(msg: impl Into<String>) -> SchemaError {
    SchemaError(msg.into())
}

/// A decoded trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// Events in file order.
    pub events: Vec<TraceEvent>,
    /// Events the capture discarded after its buffer filled.
    pub truncated: u64,
    /// Capture provenance (seed, workload, …), if recorded.
    pub meta: Option<Json>,
}

/// Encodes a trace file.
pub fn encode(events: &[TraceEvent], truncated: u64, meta: Option<Json>) -> Json {
    let mut fields = vec![
        ("schema".to_string(), Json::UInt(SCHEMA_VERSION)),
        ("truncated".to_string(), Json::UInt(truncated)),
    ];
    if let Some(meta) = meta {
        fields.push(("meta".to_string(), meta));
    }
    fields.push((
        "events".to_string(),
        Json::Array(events.iter().map(event_to_json).collect()),
    ));
    Json::Object(fields)
}

/// Decodes a trace file, rejecting unknown schema versions.
pub fn decode(doc: &Json) -> Result<TraceFile, SchemaError> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or_else(|| err("missing schema version"))?;
    if schema != SCHEMA_VERSION {
        return Err(err(format!(
            "unsupported schema {schema} (this build reads {SCHEMA_VERSION})"
        )));
    }
    let truncated = doc.get("truncated").and_then(Json::as_u64).unwrap_or(0);
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .ok_or_else(|| err("missing events array"))?
        .iter()
        .map(event_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TraceFile {
        events,
        truncated,
        meta: doc.get("meta").cloned(),
    })
}

fn micros(v: Micros) -> Json {
    Json::UInt(v.as_micros())
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn tagged(tag: &str, body: Json) -> Json {
    Json::Object(vec![(tag.to_string(), body)])
}

pub(crate) fn drop_cause_name(cause: DropCause) -> &'static str {
    match cause {
        DropCause::NoRoute => "NoRoute",
        DropCause::EarlySacrifice => "EarlySacrifice",
        DropCause::Expired => "Expired",
        DropCause::Orphaned => "Orphaned",
        DropCause::Stranded => "Stranded",
        DropCause::RunEnd => "RunEnd",
        DropCause::AdmissionRejected => "AdmissionRejected",
    }
}

fn drop_cause_from(name: &str) -> Result<DropCause, SchemaError> {
    Ok(match name {
        "NoRoute" => DropCause::NoRoute,
        "EarlySacrifice" => DropCause::EarlySacrifice,
        "Expired" => DropCause::Expired,
        "Orphaned" => DropCause::Orphaned,
        "Stranded" => DropCause::Stranded,
        "RunEnd" => DropCause::RunEnd,
        "AdmissionRejected" => DropCause::AdmissionRejected,
        other => return Err(err(format!("unknown drop cause {other:?}"))),
    })
}

fn fault_kind_to_json(kind: &FaultKind) -> Json {
    match kind {
        FaultKind::Crash => Json::Str("Crash".to_string()),
        FaultKind::Rejoin => Json::Str("Rejoin".to_string()),
        FaultKind::Stall { duration } => {
            tagged("Stall", obj(vec![("duration", micros(*duration))]))
        }
        FaultKind::Slowdown { factor, duration } => tagged(
            "Slowdown",
            obj(vec![
                ("factor", Json::Float(*factor)),
                ("duration", micros(*duration)),
            ]),
        ),
        FaultKind::ConnDrop { duration } => {
            tagged("ConnDrop", obj(vec![("duration", micros(*duration))]))
        }
        FaultKind::HeartbeatDelay { duration } => {
            tagged("HeartbeatDelay", obj(vec![("duration", micros(*duration))]))
        }
        FaultKind::SlowLoris { factor, duration } => tagged(
            "SlowLoris",
            obj(vec![
                ("factor", Json::Float(*factor)),
                ("duration", micros(*duration)),
            ]),
        ),
    }
}

fn fault_kind_from_json(j: &Json) -> Result<FaultKind, SchemaError> {
    if let Some(name) = j.as_str() {
        return Ok(match name {
            "Crash" => FaultKind::Crash,
            "Rejoin" => FaultKind::Rejoin,
            other => return Err(err(format!("unknown fault kind {other:?}"))),
        });
    }
    if let Some(body) = j.get("Stall") {
        return Ok(FaultKind::Stall {
            duration: field_micros(body, "duration")?,
        });
    }
    if let Some(body) = j.get("Slowdown") {
        return Ok(FaultKind::Slowdown {
            factor: body
                .get("factor")
                .and_then(Json::as_f64)
                .ok_or_else(|| err("Slowdown.factor"))?,
            duration: field_micros(body, "duration")?,
        });
    }
    if let Some(body) = j.get("ConnDrop") {
        return Ok(FaultKind::ConnDrop {
            duration: field_micros(body, "duration")?,
        });
    }
    if let Some(body) = j.get("HeartbeatDelay") {
        return Ok(FaultKind::HeartbeatDelay {
            duration: field_micros(body, "duration")?,
        });
    }
    if let Some(body) = j.get("SlowLoris") {
        return Ok(FaultKind::SlowLoris {
            factor: body
                .get("factor")
                .and_then(Json::as_f64)
                .ok_or_else(|| err("SlowLoris.factor"))?,
            duration: field_micros(body, "duration")?,
        });
    }
    Err(err("unrecognized fault kind"))
}

fn field_u64(body: &Json, name: &str) -> Result<u64, SchemaError> {
    body.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(format!("missing integer field {name:?}")))
}

fn field_micros(body: &Json, name: &str) -> Result<Micros, SchemaError> {
    field_u64(body, name).map(Micros::from_micros)
}

fn field_session(body: &Json) -> Result<SessionId, SchemaError> {
    let raw = field_u64(body, "session")?;
    u32::try_from(raw)
        .map(SessionId)
        .map_err(|_| err("session id out of range"))
}

/// Encodes one event as an externally-tagged JSON object.
pub fn event_to_json(e: &TraceEvent) -> Json {
    match e {
        TraceEvent::Arrival {
            t,
            request,
            session,
        } => tagged(
            "Arrival",
            obj(vec![
                ("t", micros(*t)),
                ("request", Json::UInt(*request)),
                ("session", Json::UInt(u64::from(session.0))),
            ]),
        ),
        TraceEvent::Batch {
            t,
            backend,
            session,
            size,
            duration,
            rung,
            leftover,
            seq,
        } => tagged(
            "Batch",
            obj(vec![
                ("t", micros(*t)),
                ("backend", Json::UInt(*backend as u64)),
                ("session", Json::UInt(u64::from(session.0))),
                ("size", Json::UInt(u64::from(*size))),
                ("duration", micros(*duration)),
                ("rung", Json::UInt(u64::from(*rung))),
                ("leftover", Json::Bool(*leftover)),
                ("seq", Json::UInt(*seq)),
            ]),
        ),
        TraceEvent::Completion {
            t,
            request,
            session,
            latency,
            exec_start,
            batch_seq,
            good,
        } => tagged(
            "Completion",
            obj(vec![
                ("t", micros(*t)),
                ("request", Json::UInt(*request)),
                ("session", Json::UInt(u64::from(session.0))),
                ("latency", micros(*latency)),
                ("exec_start", micros(*exec_start)),
                ("batch_seq", Json::UInt(*batch_seq)),
                ("good", Json::Bool(*good)),
            ]),
        ),
        TraceEvent::Drop {
            t,
            request,
            session,
            cause,
        } => tagged(
            "Drop",
            obj(vec![
                ("t", micros(*t)),
                ("request", Json::UInt(*request)),
                ("session", Json::UInt(u64::from(session.0))),
                ("cause", Json::Str(drop_cause_name(*cause).to_string())),
            ]),
        ),
        TraceEvent::Reallocation {
            t,
            gpus,
            model_loads,
        } => tagged(
            "Reallocation",
            obj(vec![
                ("t", micros(*t)),
                ("gpus", Json::UInt(u64::from(*gpus))),
                ("model_loads", Json::UInt(*model_loads as u64)),
            ]),
        ),
        TraceEvent::Fault { t, gpu, kind } => tagged(
            "Fault",
            obj(vec![
                ("t", micros(*t)),
                ("gpu", Json::UInt(*gpu as u64)),
                ("kind", fault_kind_to_json(kind)),
            ]),
        ),
        TraceEvent::FailureDetected { t, gpu } => tagged(
            "FailureDetected",
            obj(vec![("t", micros(*t)), ("gpu", Json::UInt(*gpu as u64))]),
        ),
        TraceEvent::Retry {
            t,
            request,
            session,
        } => tagged(
            "Retry",
            obj(vec![
                ("t", micros(*t)),
                ("request", Json::UInt(*request)),
                ("session", Json::UInt(u64::from(session.0))),
            ]),
        ),
        TraceEvent::Rejoin { t, gpu } => tagged(
            "Rejoin",
            obj(vec![("t", micros(*t)), ("gpu", Json::UInt(*gpu as u64))]),
        ),
    }
}

/// Decodes one externally-tagged event object.
pub fn event_from_json(j: &Json) -> Result<TraceEvent, SchemaError> {
    let Json::Object(fields) = j else {
        return Err(err("event is not an object"));
    };
    let [(tag, body)] = fields.as_slice() else {
        return Err(err("event must have exactly one variant tag"));
    };
    Ok(match tag.as_str() {
        "Arrival" => TraceEvent::Arrival {
            t: field_micros(body, "t")?,
            request: field_u64(body, "request")?,
            session: field_session(body)?,
        },
        "Batch" => TraceEvent::Batch {
            t: field_micros(body, "t")?,
            backend: field_u64(body, "backend")? as usize,
            session: field_session(body)?,
            size: u32::try_from(field_u64(body, "size")?).map_err(|_| err("size"))?,
            duration: field_micros(body, "duration")?,
            rung: u32::try_from(field_u64(body, "rung")?).map_err(|_| err("rung"))?,
            leftover: body
                .get("leftover")
                .and_then(Json::as_bool)
                .ok_or_else(|| err("leftover"))?,
            seq: field_u64(body, "seq")?,
        },
        "Completion" => TraceEvent::Completion {
            t: field_micros(body, "t")?,
            request: field_u64(body, "request")?,
            session: field_session(body)?,
            latency: field_micros(body, "latency")?,
            exec_start: field_micros(body, "exec_start")?,
            batch_seq: field_u64(body, "batch_seq")?,
            good: body
                .get("good")
                .and_then(Json::as_bool)
                .ok_or_else(|| err("good"))?,
        },
        "Drop" => TraceEvent::Drop {
            t: field_micros(body, "t")?,
            request: field_u64(body, "request")?,
            session: field_session(body)?,
            cause: drop_cause_from(
                body.get("cause")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("cause"))?,
            )?,
        },
        "Reallocation" => TraceEvent::Reallocation {
            t: field_micros(body, "t")?,
            gpus: u32::try_from(field_u64(body, "gpus")?).map_err(|_| err("gpus"))?,
            model_loads: field_u64(body, "model_loads")? as usize,
        },
        "Fault" => TraceEvent::Fault {
            t: field_micros(body, "t")?,
            gpu: field_u64(body, "gpu")? as usize,
            kind: fault_kind_from_json(body.get("kind").ok_or_else(|| err("kind"))?)?,
        },
        "FailureDetected" => TraceEvent::FailureDetected {
            t: field_micros(body, "t")?,
            gpu: field_u64(body, "gpu")? as usize,
        },
        "Retry" => TraceEvent::Retry {
            t: field_micros(body, "t")?,
            request: field_u64(body, "request")?,
            session: field_session(body)?,
        },
        "Rejoin" => TraceEvent::Rejoin {
            t: field_micros(body, "t")?,
            gpu: field_u64(body, "gpu")? as usize,
        },
        other => return Err(err(format!("unknown event tag {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Micros {
        Micros::from_millis(v)
    }

    fn one_of_each() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Arrival {
                t: ms(1),
                request: 0,
                session: SessionId(1),
            },
            TraceEvent::Batch {
                t: ms(2),
                backend: 3,
                session: SessionId(1),
                size: 5,
                duration: ms(12),
                rung: 8,
                leftover: true,
                seq: 1,
            },
            TraceEvent::Completion {
                t: ms(14),
                request: 0,
                session: SessionId(1),
                latency: ms(13),
                exec_start: ms(2),
                batch_seq: 1,
                good: true,
            },
            TraceEvent::Drop {
                t: ms(15),
                request: 9,
                session: SessionId(2),
                cause: DropCause::EarlySacrifice,
            },
            TraceEvent::Reallocation {
                t: ms(20),
                gpus: 16,
                model_loads: 4,
            },
            TraceEvent::Fault {
                t: ms(21),
                gpu: 5,
                kind: FaultKind::Slowdown {
                    factor: 2.5,
                    duration: ms(100),
                },
            },
            TraceEvent::Fault {
                t: ms(22),
                gpu: 5,
                kind: FaultKind::Crash,
            },
            TraceEvent::FailureDetected { t: ms(23), gpu: 5 },
            TraceEvent::Retry {
                t: ms(24),
                request: 11,
                session: SessionId(0),
            },
            TraceEvent::Rejoin { t: ms(40), gpu: 5 },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_text() {
        let events = one_of_each();
        let text = encode(&events, 7, Some(Json::Object(vec![]))).to_string();
        let back = decode(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.events, events);
        assert_eq!(back.truncated, 7);
        assert!(back.meta.is_some());
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let doc = Json::Object(vec![
            ("schema".into(), Json::UInt(SCHEMA_VERSION + 1)),
            ("events".into(), Json::Array(vec![])),
        ]);
        assert!(decode(&doc).is_err());
    }

    #[test]
    fn malformed_events_are_rejected() {
        for bad in [
            r#"{"schema":2,"events":[{"Arrival":{"t":1}}]}"#,
            r#"{"schema":2,"events":[{"Mystery":{"t":1}}]}"#,
            r#"{"schema":2,"events":[{"Drop":{"t":1,"request":1,"session":0,"cause":"Huh"}}]}"#,
            r#"{"schema":2,"events":[{"Batch":{"t":1,"backend":0,"session":0,"size":4,"duration":9,"seq":0}}]}"#,
        ] {
            let doc = crate::json::parse(bad).unwrap();
            assert!(decode(&doc).is_err(), "{bad}");
        }
    }
}
