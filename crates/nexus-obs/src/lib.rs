//! Observability for the Nexus reproduction (DESIGN.md §12).
//!
//! The simulator and runtimes capture bounded [`nexus_runtime::Trace`]
//! streams of per-request phase spans (arrival → queue wait → batched
//! execution → completion), drop causes, and control-plane markers. This
//! crate turns those captures into artifacts:
//!
//! - [`raw`] — the versioned JSON trace-file format (lossless round-trip);
//! - [`phases`] — request lifetime reconstruction and quantile stats;
//! - [`perfetto`] — Chrome-trace / Perfetto export (one track per GPU
//!   slot, one per session, flow arrows arrival → batch);
//! - [`prometheus`] — Prometheus text exposition of a run's metrics;
//! - [`summary`] — the compact human summary;
//! - [`json`] — the dependency-free JSON value the above are built on.
//!
//! The `nexus-trace` binary wraps these as `capture` / `export` /
//! `summarize` / `diff` subcommands.

pub mod json;
pub mod perfetto;
pub mod phases;
pub mod prometheus;
pub mod raw;
pub mod summary;

#[cfg(test)]
mod proptests;

pub use json::{parse as parse_json, Json, ParseError};
pub use perfetto::{chrome_trace, validate_chrome_trace};
pub use phases::{phase_stats, reconstruct, DropSpan, PhaseStats, Phases, RequestSpan};
pub use raw::{
    decode, encode, event_from_json, event_to_json, SchemaError, TraceFile, SCHEMA_VERSION,
};
