//! Request phase-span reconstruction.
//!
//! A completed request's lifetime partitions exactly into queue wait
//! `[arrival, exec_start)` and batched execution `[exec_start, completion)`
//! (DESIGN.md §12). [`TraceEvent::Completion`] carries everything needed to
//! rebuild both spans, so reconstruction works even on truncated captures
//! where the matching `Arrival`/`Batch` events were discarded.

use nexus_profile::Micros;
use nexus_runtime::{DropCause, TraceEvent};
use nexus_scheduler::SessionId;

/// One completed request's reconstructed lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpan {
    /// Request id.
    pub request: u64,
    /// Session.
    pub session: SessionId,
    /// Frontend arrival.
    pub arrival: Micros,
    /// Queue-wait → execution boundary.
    pub exec_start: Micros,
    /// Completion.
    pub completion: Micros,
    /// The serving batch's trace id (0 if unrecorded).
    pub batch_seq: u64,
    /// Whether the deadline was met.
    pub good: bool,
}

impl RequestSpan {
    /// Time spent queued: `[arrival, exec_start)`. Saturating — a corrupt
    /// or hand-edited trace must degrade to zero-width phases, not panic
    /// the analysis tooling.
    pub fn queue_wait(&self) -> Micros {
        self.exec_start.saturating_sub(self.arrival)
    }

    /// Time spent executing: `[exec_start, completion)`. Saturating, like
    /// [`RequestSpan::queue_wait`].
    pub fn exec(&self) -> Micros {
        self.completion.saturating_sub(self.exec_start)
    }

    /// Arrival-to-completion latency; equals `queue_wait() + exec()` by
    /// construction (the partition property the proptests pin down —
    /// [`reconstruct`] clamps `exec_start` into `[arrival, completion]`
    /// so the identity survives even corrupt inputs).
    pub fn total(&self) -> Micros {
        self.completion.saturating_sub(self.arrival)
    }
}

/// One dropped request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropSpan {
    /// Request id.
    pub request: u64,
    /// Session.
    pub session: SessionId,
    /// When the drop happened.
    pub t: Micros,
    /// Why.
    pub cause: DropCause,
}

/// Every reconstructed lifetime in a trace.
#[derive(Debug, Clone, Default)]
pub struct Phases {
    /// Completed requests, in completion order.
    pub spans: Vec<RequestSpan>,
    /// Dropped requests, in drop order.
    pub drops: Vec<DropSpan>,
}

/// Rebuilds request lifetimes from an event stream.
pub fn reconstruct(events: &[TraceEvent]) -> Phases {
    let mut phases = Phases::default();
    for e in events {
        match *e {
            TraceEvent::Completion {
                t,
                request,
                session,
                latency,
                exec_start,
                batch_seq,
                good,
            } => {
                // A well-formed trace satisfies arrival <= exec_start <=
                // t; a truncated or bit-flipped file may not. Saturate and
                // clamp instead of panicking — the span degrades to
                // zero-width phases while the partition identity
                // (queue + exec == total) still holds.
                let arrival = t.saturating_sub(latency);
                phases.spans.push(RequestSpan {
                    request,
                    session,
                    arrival,
                    exec_start: exec_start.clamp(arrival, t),
                    completion: t,
                    batch_seq,
                    good,
                })
            }
            TraceEvent::Drop {
                t,
                request,
                session,
                cause,
            } => phases.drops.push(DropSpan {
                request,
                session,
                t,
                cause,
            }),
            _ => {}
        }
    }
    phases
}

/// Quantile summary of one phase across many spans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Number of samples.
    pub count: usize,
    /// Median, in µs.
    pub p50: u64,
    /// 99th percentile, in µs.
    pub p99: u64,
    /// Mean, in µs.
    pub mean: f64,
}

/// Computes count/p50/p99/mean over raw µs samples (empty → all zeros).
pub fn phase_stats(mut samples: Vec<u64>) -> PhaseStats {
    if samples.is_empty() {
        return PhaseStats {
            count: 0,
            p50: 0,
            p99: 0,
            mean: 0.0,
        };
    }
    samples.sort_unstable();
    let q = |f: f64| {
        let idx = ((samples.len() - 1) as f64 * f).round() as usize;
        samples[idx]
    };
    let sum: u64 = samples.iter().sum();
    PhaseStats {
        count: samples.len(),
        p50: q(0.50),
        p99: q(0.99),
        mean: sum as f64 / samples.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_rebuild_from_completions_alone() {
        let events = vec![TraceEvent::Completion {
            t: Micros::from_micros(150),
            request: 3,
            session: SessionId(1),
            latency: Micros::from_micros(100),
            exec_start: Micros::from_micros(90),
            batch_seq: 2,
            good: true,
        }];
        let p = reconstruct(&events);
        assert_eq!(p.spans.len(), 1);
        let s = p.spans[0];
        assert_eq!(s.arrival, Micros::from_micros(50));
        assert_eq!(s.queue_wait(), Micros::from_micros(40));
        assert_eq!(s.exec(), Micros::from_micros(60));
        assert_eq!(s.total(), Micros::from_micros(100));
    }

    #[test]
    fn corrupt_completions_degrade_instead_of_panicking() {
        // latency > t (arrival would underflow) and exec_start after the
        // completion time: both clamp to zero-width phases.
        let events = vec![TraceEvent::Completion {
            t: Micros::from_micros(100),
            request: 9,
            session: SessionId(0),
            latency: Micros::from_micros(5_000),
            exec_start: Micros::from_micros(700),
            batch_seq: 0,
            good: false,
        }];
        let p = reconstruct(&events);
        let s = p.spans[0];
        assert_eq!(s.arrival, Micros::ZERO);
        assert_eq!(s.exec_start, Micros::from_micros(100));
        assert_eq!(s.queue_wait() + s.exec(), s.total());
    }

    #[test]
    fn stats_quantiles_are_sane() {
        let samples: Vec<u64> = (1..=100).collect();
        let st = phase_stats(samples);
        assert_eq!(st.count, 100);
        assert_eq!(st.p50, 51);
        assert_eq!(st.p99, 99);
        assert!((st.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = phase_stats(vec![]);
        assert_eq!(st.count, 0);
        assert_eq!(st.p99, 0);
    }
}
