//! A compact human-readable run summary.
//!
//! SLO attainment, per-phase latency quantiles (from the captured trace,
//! when present), per-GPU measured vs planned occupancy, and a loud warning
//! when the trace buffer overflowed — the things you want before opening
//! the full Perfetto export.

use std::fmt::Write as _;

use nexus_runtime::{DropCause, SimResult, TraceEvent};

use crate::phases::{self, phase_stats};

fn ms(us: u64) -> f64 {
    us as f64 / 1_000.0
}

/// Renders the summary.
pub fn render(result: &SimResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SLO attainment: {:.2}% of queries good ({:.2}% of requests); goodput {:.1} q/s",
        (1.0 - result.query_bad_rate) * 100.0,
        (1.0 - result.request_bad_rate) * 100.0,
        result.query_goodput
    );
    let _ = writeln!(
        out,
        "Cluster: {:.1} mean GPUs, {:.1}% busy, {} engine events",
        result.mean_gpus,
        result.gpu_utilization * 100.0,
        result.events_processed
    );

    match &result.trace {
        Some(trace) => {
            let ph = phases::reconstruct(trace.events());
            let queue = phase_stats(
                ph.spans
                    .iter()
                    .map(|s| s.queue_wait().as_micros())
                    .collect(),
            );
            let exec = phase_stats(ph.spans.iter().map(|s| s.exec().as_micros()).collect());
            let total = phase_stats(ph.spans.iter().map(|s| s.total().as_micros()).collect());
            let _ = writeln!(
                out,
                "Phases ({} completions): queue p50 {:.2} ms p99 {:.2} ms | exec p50 {:.2} ms p99 {:.2} ms | total p50 {:.2} ms p99 {:.2} ms",
                queue.count,
                ms(queue.p50),
                ms(queue.p99),
                ms(exec.p50),
                ms(exec.p99),
                ms(total.p50),
                ms(total.p99),
            );
            if !ph.drops.is_empty() {
                let mut by_cause: Vec<(DropCause, u64)> = Vec::new();
                for d in &ph.drops {
                    match by_cause.iter_mut().find(|(c, _)| *c == d.cause) {
                        Some((_, n)) => *n += 1,
                        None => by_cause.push((d.cause, 1)),
                    }
                }
                let parts: Vec<String> =
                    by_cause.iter().map(|(c, n)| format!("{c:?}={n}")).collect();
                let _ = writeln!(out, "Drops: {} ({})", ph.drops.len(), parts.join(" "));
            }
            let retries = trace
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::Retry { .. }))
                .count();
            if retries > 0 {
                let _ = writeln!(
                    out,
                    "Retries: {retries} re-dispatched to a surviving backend"
                );
            }

            // Per-rung occupancy: how full each executed ladder shape ran
            // (size/rung). Classic execution reports rung == size, i.e. a
            // single always-full pseudo-rung per batch size; under ladder
            // execution partial tail minibatches pull the mean down.
            let mut rungs: Vec<(u32, u64, f64, u64)> = Vec::new();
            for e in trace.events() {
                if let TraceEvent::Batch {
                    size,
                    rung,
                    leftover,
                    ..
                } = e
                {
                    let r = (*rung).max(1);
                    let i = match rungs.binary_search_by_key(&r, |e| e.0) {
                        Ok(i) => i,
                        Err(i) => {
                            rungs.insert(i, (r, 0, 0.0, 0));
                            i
                        }
                    };
                    rungs[i].1 += 1;
                    rungs[i].2 += f64::from(*size) / f64::from(r);
                    rungs[i].3 += u64::from(*leftover);
                }
            }
            if !rungs.is_empty() {
                let _ = writeln!(out, "Rung occupancy (executed minibatch shapes):");
                for (rung, count, occ_sum, leftovers) in &rungs {
                    let _ = writeln!(
                        out,
                        "  rung {rung:>3}: {count:>6} batches, mean occupancy {:>5.1}%, {leftovers} leftover",
                        100.0 * occ_sum / *count as f64,
                    );
                }
            }
        }
        None => {
            let _ = writeln!(out, "Phases: tracing disabled (trace_capacity = 0)");
        }
    }

    if !result.gpu_occupancy.is_empty() {
        let _ = writeln!(out, "GPU occupancy (measured vs squishy plan):");
        for occ in &result.gpu_occupancy {
            let _ = writeln!(
                out,
                "  gpu {:>3}: busy {:>5.1}%  planned {:>5.1}%  delta {:+.1}%",
                occ.backend,
                occ.busy_frac * 100.0,
                occ.planned_frac * 100.0,
                (occ.busy_frac - occ.planned_frac) * 100.0,
            );
        }
    }

    // One line per device pool; a homogeneous fleet is a single pool, so
    // the rollup only earns its space on mixed fleets.
    if result.pool_stats.len() > 1 {
        let _ = writeln!(out, "Device pools:");
        for p in &result.pool_stats {
            let _ = writeln!(
                out,
                "  pool {:>2} [{}]: {:>3} backends, busy {:>5.1}%, goodput {:>7.1} req/s, bad {:>5.2}%",
                p.pool,
                p.device,
                p.backends,
                p.busy_frac * 100.0,
                p.request_goodput,
                p.request_bad_rate * 100.0,
            );
        }
    }

    if result.trace_truncated > 0 {
        let _ = writeln!(
            out,
            "WARNING: trace truncated — {} events discarded after the capture \
             buffer filled; raise trace_capacity for a complete capture",
            result.trace_truncated
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_profile::{Micros, GPU_GTX1080TI};
    use nexus_runtime::{SystemConfig, TrafficClass};
    use nexus_workload::{apps, ArrivalKind};

    #[test]
    fn summary_covers_phases_and_occupancy_when_traced() {
        let result = nexus::run_traced(
            SystemConfig::nexus(),
            GPU_GTX1080TI,
            2,
            vec![TrafficClass::new(
                apps::traffic(),
                ArrivalKind::Uniform,
                30.0,
            )],
            1,
            Micros::from_secs(2),
            Micros::from_secs(6),
            1 << 20,
        );
        let text = render(&result);
        assert!(text.contains("SLO attainment"), "{text}");
        assert!(text.contains("Phases ("), "{text}");
        assert!(text.contains("GPU occupancy"), "{text}");
        assert!(text.contains("Rung occupancy"), "{text}");
        assert!(!text.contains("WARNING"), "{text}");
    }

    #[test]
    fn summary_rolls_up_pools_on_mixed_fleets() {
        use nexus_runtime::{run_heterogeneous, DevicePool};
        let hetero = run_heterogeneous(
            &SystemConfig::nexus().with_static_allocation(),
            &[
                DevicePool {
                    device: GPU_GTX1080TI,
                    gpus: 4,
                },
                DevicePool {
                    device: nexus_profile::GPU_K80,
                    gpus: 4,
                },
            ],
            vec![TrafficClass::new(
                apps::traffic(),
                ArrivalKind::Uniform,
                60.0,
            )],
            3,
            Micros::from_secs(2),
            Micros::from_secs(6),
        )
        .unwrap();
        let text = render(&hetero.result);
        assert!(text.contains("Device pools:"), "{text}");
        assert!(text.contains("NVIDIA GTX 1080Ti"), "{text}");
        assert!(text.contains("NVIDIA K80"), "{text}");
    }

    #[test]
    fn summary_flags_truncation_and_disabled_tracing() {
        let untraced = nexus::run_once(
            SystemConfig::nexus(),
            GPU_GTX1080TI,
            1,
            vec![TrafficClass::new(
                apps::traffic(),
                ArrivalKind::Uniform,
                20.0,
            )],
            1,
            Micros::from_secs(1),
            Micros::from_secs(3),
        );
        assert!(render(&untraced).contains("tracing disabled"));

        let tiny = nexus::run_traced(
            SystemConfig::nexus(),
            GPU_GTX1080TI,
            1,
            vec![TrafficClass::new(
                apps::traffic(),
                ArrivalKind::Uniform,
                20.0,
            )],
            1,
            Micros::from_secs(1),
            Micros::from_secs(3),
            4,
        );
        assert!(tiny.trace_truncated > 0);
        assert!(render(&tiny).contains("WARNING: trace truncated"));
    }
}
