//! Chrome-trace (Perfetto-loadable) export.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) that
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! ingest:
//!
//! - **pid 1 "GPU backends"** — one thread per backend slot; every batch
//!   execution is a complete `"X"` slice with its size/session/seq in args.
//! - **pid 2 "Sessions"** — one thread per session; every completed request
//!   is an async `"b"`/`"e"` pair spanning arrival → completion, and every
//!   drop an instant `"i"` tagged with its cause.
//! - **pid 3 "Control plane"** — instants for reallocations, faults,
//!   failure detections, retries, and rejoins.
//! - Flow arrows (`"s"` → `"f"`) connect each request's arrival to the
//!   batch slice that served it, when that batch survives in the capture.

use std::collections::BTreeMap;

use nexus_runtime::TraceEvent;

use crate::json::Json;
use crate::phases;

const GPU_PID: u64 = 1;
const SESSION_PID: u64 = 2;
const CONTROL_PID: u64 = 3;

fn ev(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

fn metadata(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Json {
    let mut fields = vec![
        ("name", s(name)),
        ("ph", s("M")),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(tid.unwrap_or(0))),
    ];
    fields.push(("args", ev(vec![("name", s(value))])));
    ev(fields)
}

/// Renders an event stream as a Chrome-trace JSON document.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let mut out: Vec<Json> = Vec::new();

    // Track discovery first, so metadata precedes data events.
    let mut backends: BTreeMap<usize, ()> = BTreeMap::new();
    let mut sessions: BTreeMap<u32, ()> = BTreeMap::new();
    let mut batch_backend: BTreeMap<u64, usize> = BTreeMap::new();
    for e in events {
        match e {
            TraceEvent::Batch {
                backend,
                session,
                seq,
                ..
            } => {
                backends.insert(*backend, ());
                sessions.insert(session.0, ());
                batch_backend.insert(*seq, *backend);
            }
            TraceEvent::Arrival { session, .. }
            | TraceEvent::Completion { session, .. }
            | TraceEvent::Drop { session, .. }
            | TraceEvent::Retry { session, .. } => {
                sessions.insert(session.0, ());
            }
            _ => {}
        }
    }

    out.push(metadata("process_name", GPU_PID, None, "GPU backends"));
    out.push(metadata("process_name", SESSION_PID, None, "Sessions"));
    out.push(metadata("process_name", CONTROL_PID, None, "Control plane"));
    for &b in backends.keys() {
        out.push(metadata(
            "thread_name",
            GPU_PID,
            Some(b as u64),
            &format!("gpu {b}"),
        ));
    }
    for &sid in sessions.keys() {
        out.push(metadata(
            "thread_name",
            SESSION_PID,
            Some(u64::from(sid)),
            &format!("session {sid}"),
        ));
    }

    for e in events {
        match e {
            TraceEvent::Batch {
                t,
                backend,
                session,
                size,
                duration,
                rung,
                leftover,
                seq,
            } => out.push(ev(vec![
                ("name", s(&format!("batch b={size}/{rung} s={}", session.0))),
                ("cat", s("exec")),
                ("ph", s("X")),
                ("ts", Json::UInt(t.as_micros())),
                ("dur", Json::UInt(duration.as_micros())),
                ("pid", Json::UInt(GPU_PID)),
                ("tid", Json::UInt(*backend as u64)),
                (
                    "args",
                    ev(vec![
                        ("seq", Json::UInt(*seq)),
                        ("size", Json::UInt(u64::from(*size))),
                        ("rung", Json::UInt(u64::from(*rung))),
                        ("leftover", Json::Bool(*leftover)),
                        ("session", Json::UInt(u64::from(session.0))),
                    ]),
                ),
            ])),
            TraceEvent::Drop {
                t,
                request,
                session,
                cause,
            } => out.push(ev(vec![
                ("name", s(&format!("drop:{cause:?}"))),
                ("cat", s("drop")),
                ("ph", s("i")),
                ("s", s("t")),
                ("ts", Json::UInt(t.as_micros())),
                ("pid", Json::UInt(SESSION_PID)),
                ("tid", Json::UInt(u64::from(session.0))),
                ("args", ev(vec![("request", Json::UInt(*request))])),
            ])),
            TraceEvent::Reallocation {
                t,
                gpus,
                model_loads,
            } => out.push(ev(vec![
                ("name", s(&format!("realloc gpus={gpus}"))),
                ("cat", s("control")),
                ("ph", s("i")),
                ("s", s("g")),
                ("ts", Json::UInt(t.as_micros())),
                ("pid", Json::UInt(CONTROL_PID)),
                ("tid", Json::UInt(0)),
                (
                    "args",
                    ev(vec![
                        ("gpus", Json::UInt(u64::from(*gpus))),
                        ("model_loads", Json::UInt(*model_loads as u64)),
                    ]),
                ),
            ])),
            TraceEvent::Fault { t, gpu, kind } => out.push(ev(vec![
                ("name", s(&format!("fault:{kind:?} gpu={gpu}"))),
                ("cat", s("control")),
                ("ph", s("i")),
                ("s", s("g")),
                ("ts", Json::UInt(t.as_micros())),
                ("pid", Json::UInt(CONTROL_PID)),
                ("tid", Json::UInt(0)),
            ])),
            TraceEvent::FailureDetected { t, gpu } => out.push(ev(vec![
                ("name", s(&format!("failure-detected gpu={gpu}"))),
                ("cat", s("control")),
                ("ph", s("i")),
                ("s", s("g")),
                ("ts", Json::UInt(t.as_micros())),
                ("pid", Json::UInt(CONTROL_PID)),
                ("tid", Json::UInt(0)),
            ])),
            TraceEvent::Retry {
                t,
                request,
                session,
            } => out.push(ev(vec![
                ("name", s(&format!("retry req={request}"))),
                ("cat", s("control")),
                ("ph", s("i")),
                ("s", s("g")),
                ("ts", Json::UInt(t.as_micros())),
                ("pid", Json::UInt(CONTROL_PID)),
                ("tid", Json::UInt(u64::from(session.0))),
            ])),
            TraceEvent::Rejoin { t, gpu } => out.push(ev(vec![
                ("name", s(&format!("rejoin gpu={gpu}"))),
                ("cat", s("control")),
                ("ph", s("i")),
                ("s", s("g")),
                ("ts", Json::UInt(t.as_micros())),
                ("pid", Json::UInt(CONTROL_PID)),
                ("tid", Json::UInt(0)),
            ])),
            // Arrivals are represented by the async span start below.
            TraceEvent::Arrival { .. } | TraceEvent::Completion { .. } => {}
        }
    }

    // Request lifetimes: async spans on the session track plus flow arrows
    // into the serving batch slice.
    for span in phases::reconstruct(events).spans {
        let sid = u64::from(span.session.0);
        out.push(ev(vec![
            ("name", s("request")),
            ("cat", s("request")),
            ("ph", s("b")),
            ("id", Json::UInt(span.request)),
            ("ts", Json::UInt(span.arrival.as_micros())),
            ("pid", Json::UInt(SESSION_PID)),
            ("tid", Json::UInt(sid)),
            (
                "args",
                ev(vec![
                    ("queue_us", Json::UInt(span.queue_wait().as_micros())),
                    ("exec_us", Json::UInt(span.exec().as_micros())),
                    ("good", Json::Bool(span.good)),
                ]),
            ),
        ]));
        out.push(ev(vec![
            ("name", s("request")),
            ("cat", s("request")),
            ("ph", s("e")),
            ("id", Json::UInt(span.request)),
            ("ts", Json::UInt(span.completion.as_micros())),
            ("pid", Json::UInt(SESSION_PID)),
            ("tid", Json::UInt(sid)),
        ]));
        // Flow arrow arrival → batch, only when the batch slice survived
        // capture truncation (otherwise there is nothing to bind to).
        if let Some(&backend) = batch_backend.get(&span.batch_seq) {
            out.push(ev(vec![
                ("name", s("dispatch")),
                ("cat", s("flow")),
                ("ph", s("s")),
                ("id", Json::UInt(span.request)),
                ("ts", Json::UInt(span.arrival.as_micros())),
                ("pid", Json::UInt(SESSION_PID)),
                ("tid", Json::UInt(sid)),
            ]));
            out.push(ev(vec![
                ("name", s("dispatch")),
                ("cat", s("flow")),
                ("ph", s("f")),
                ("bp", s("e")),
                ("id", Json::UInt(span.request)),
                ("ts", Json::UInt(span.exec_start.as_micros())),
                ("pid", Json::UInt(GPU_PID)),
                ("tid", Json::UInt(backend as u64)),
            ]));
        }
    }

    Json::Object(vec![
        ("traceEvents".to_string(), Json::Array(out)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
}

/// Structural validity check for a Chrome-trace document: the fields the
/// viewers require are present and well-typed. Returns the first problem.
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        for key in ["name", "pid", "tid"] {
            if e.get(key).is_none() {
                return Err(format!("event {i} (ph={ph}): missing {key}"));
            }
        }
        if ph != "M" && e.get("ts").and_then(Json::as_u64).is_none() {
            return Err(format!("event {i} (ph={ph}): missing ts"));
        }
        match ph {
            "X" => {
                if e.get("dur").and_then(Json::as_u64).is_none() {
                    return Err(format!("event {i}: X slice without dur"));
                }
            }
            "b" | "e" | "s" | "f" => {
                if e.get("id").is_none() {
                    return Err(format!("event {i}: ph={ph} without id"));
                }
            }
            "i" | "M" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_profile::Micros;
    use nexus_runtime::DropCause;
    use nexus_scheduler::SessionId;

    #[test]
    fn export_is_structurally_valid_and_flows_pair_up() {
        let events = vec![
            TraceEvent::Arrival {
                t: Micros::from_micros(10),
                request: 1,
                session: SessionId(0),
            },
            TraceEvent::Batch {
                t: Micros::from_micros(40),
                backend: 2,
                session: SessionId(0),
                size: 4,
                duration: Micros::from_micros(60),
                rung: 4,
                leftover: false,
                seq: 1,
            },
            TraceEvent::Completion {
                t: Micros::from_micros(100),
                request: 1,
                session: SessionId(0),
                latency: Micros::from_micros(90),
                exec_start: Micros::from_micros(40),
                batch_seq: 1,
                good: true,
            },
            TraceEvent::Drop {
                t: Micros::from_micros(120),
                request: 2,
                session: SessionId(0),
                cause: DropCause::Expired,
            },
        ];
        let doc = chrome_trace(&events);
        validate_chrome_trace(&doc).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        let count_ph = |ph: &str| {
            evs.iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(count_ph("X"), 1);
        assert_eq!(count_ph("b"), 1);
        assert_eq!(count_ph("e"), 1);
        assert_eq!(count_ph("s"), count_ph("f"));
        assert_eq!(count_ph("s"), 1);
        assert_eq!(count_ph("i"), 1);
    }

    #[test]
    fn truncated_batches_suppress_flows_not_spans() {
        // Completion referencing a batch that was truncated away.
        let events = vec![TraceEvent::Completion {
            t: Micros::from_micros(100),
            request: 1,
            session: SessionId(3),
            latency: Micros::from_micros(50),
            exec_start: Micros::from_micros(80),
            batch_seq: 77,
            good: false,
        }];
        let doc = chrome_trace(&events);
        validate_chrome_trace(&doc).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(evs
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) != Some("s")));
        assert!(evs
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("b")));
    }
}
