//! Property tests for the observability layer: phase spans partition every
//! request lifetime exactly (no gaps, no overlaps), and the trace file
//! format round-trips every event stream losslessly.

#![cfg(test)]

use proptest::prelude::*;

use nexus_profile::Micros;
use nexus_runtime::{simulate_node, DropCause, DropPolicy, NodeConfig, NodeSession, TraceEvent};
use nexus_scheduler::SessionId;
use nexus_simgpu::{FaultKind, InterferenceModel};
use nexus_workload::ArrivalKind;

use crate::phases::reconstruct;
use crate::raw;

/// Strategy for one arbitrary trace event, variant chosen by index.
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        0usize..9,
        0u64..10_000_000, // t (µs)
        0u64..1_000_000,  // request / seq
        0u32..64,         // session
        (0u64..200_000, 0u64..400_000, 0usize..8, 1u32..64),
    )
        .prop_map(|(variant, t, id, session, (a, b, gpu, small))| {
            let t = Micros::from_micros(t);
            let session = SessionId(session);
            match variant {
                0 => TraceEvent::Arrival {
                    t,
                    request: id,
                    session,
                },
                1 => TraceEvent::Batch {
                    t,
                    backend: gpu,
                    session,
                    size: small,
                    duration: Micros::from_micros(b),
                    rung: small.next_power_of_two(),
                    leftover: a % 2 == 1,
                    seq: id,
                },
                2 => TraceEvent::Completion {
                    t: t + Micros::from_micros(a + b),
                    request: id,
                    session,
                    latency: Micros::from_micros(a + b),
                    exec_start: t + Micros::from_micros(a),
                    batch_seq: id / 2,
                    good: a % 2 == 0,
                },
                3 => TraceEvent::Drop {
                    t,
                    request: id,
                    session,
                    cause: match a % 6 {
                        0 => DropCause::NoRoute,
                        1 => DropCause::EarlySacrifice,
                        2 => DropCause::Expired,
                        3 => DropCause::Orphaned,
                        4 => DropCause::Stranded,
                        _ => DropCause::RunEnd,
                    },
                },
                4 => TraceEvent::Reallocation {
                    t,
                    gpus: small,
                    model_loads: gpu,
                },
                5 => TraceEvent::Fault {
                    t,
                    gpu,
                    kind: match a % 4 {
                        0 => FaultKind::Crash,
                        1 => FaultKind::Rejoin,
                        2 => FaultKind::Stall {
                            duration: Micros::from_micros(b),
                        },
                        _ => FaultKind::Slowdown {
                            factor: 1.0 + (a % 300) as f64 / 100.0,
                            duration: Micros::from_micros(b),
                        },
                    },
                },
                6 => TraceEvent::FailureDetected { t, gpu },
                7 => TraceEvent::Retry {
                    t,
                    request: id,
                    session,
                },
                _ => TraceEvent::Rejoin { t, gpu },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lossless round-trip: encode → serialize → parse → decode recovers
    /// every event bit-for-bit, for arbitrary event streams.
    #[test]
    fn trace_file_round_trips_losslessly(
        events in prop::collection::vec(arb_event(), 0..40),
        truncated in 0u64..1_000,
    ) {
        let text = raw::encode(&events, truncated, None).to_string();
        let doc = crate::json::parse(&text).expect("own output parses");
        let back = raw::decode(&doc).expect("own output decodes");
        prop_assert_eq!(back.events, events);
        prop_assert_eq!(back.truncated, truncated);
    }

    /// Synthetic lifetimes: for any (arrival, queue, exec) triple, the
    /// reconstructed span partitions [arrival, completion] exactly —
    /// queue = [arrival, exec_start), exec = [exec_start, completion),
    /// no gap and no overlap.
    #[test]
    fn spans_partition_synthetic_lifetimes(
        lifetimes in prop::collection::vec(
            (0u64..5_000_000, 0u64..500_000, 1u64..500_000),
            1..50,
        ),
    ) {
        let events: Vec<TraceEvent> = lifetimes
            .iter()
            .enumerate()
            .map(|(i, &(arrival, queue, exec))| TraceEvent::Completion {
                t: Micros::from_micros(arrival + queue + exec),
                request: i as u64,
                session: SessionId(0),
                latency: Micros::from_micros(queue + exec),
                exec_start: Micros::from_micros(arrival + queue),
                batch_seq: 1,
                good: true,
            })
            .collect();
        let ph = reconstruct(&events);
        prop_assert_eq!(ph.spans.len(), lifetimes.len());
        for (span, &(arrival, queue, exec)) in ph.spans.iter().zip(&lifetimes) {
            prop_assert_eq!(span.arrival.as_micros(), arrival);
            prop_assert_eq!(span.queue_wait().as_micros(), queue);
            prop_assert_eq!(span.exec().as_micros(), exec);
            // The partition property: phases tile the lifetime exactly.
            prop_assert_eq!(span.queue_wait() + span.exec(), span.total());
            prop_assert!(span.arrival <= span.exec_start);
            prop_assert!(span.exec_start <= span.completion);
        }
    }

    /// End-to-end: traces captured from real (randomly loaded) node
    /// simulations obey the partition property for every completion, and
    /// every batch a completion references was allocated by the recorder.
    #[test]
    fn spans_partition_simulated_lifetimes(
        seed in 0u64..1_000,
        rate in 50.0f64..1_500.0,
        slo_ms in 40u64..200,
    ) {
        let out = simulate_node(
            &NodeConfig {
                coordinated: true,
                drop_policy: DropPolicy::Early,
                interference: InterferenceModel::default(),
                gpu_memory: 11 << 30,
                seed,
                horizon: Micros::from_secs(3),
                warmup: Micros::from_secs(1),
                strict_batches: false,
                ladder: false,
                trace_capacity: 1 << 20,
            },
            &[NodeSession {
                profile: nexus_profile::BatchingProfile::from_linear_ms(1.0, 10.0, 32),
                slo: Micros::from_millis(slo_ms),
                rate,
                arrival: ArrivalKind::Poisson,
            }],
        );
        let trace = out.trace.expect("tracing enabled");
        prop_assert_eq!(trace.truncated, 0);
        let ph = reconstruct(trace.events());
        let max_seq = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Batch { seq, .. } => Some(*seq),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        for span in &ph.spans {
            prop_assert_eq!(span.queue_wait() + span.exec(), span.total());
            prop_assert!(span.arrival <= span.exec_start);
            prop_assert!(span.exec_start <= span.completion);
            prop_assert!(span.batch_seq >= 1 && span.batch_seq <= max_seq);
        }
    }
}
