//! End-to-end integration tests spanning every crate in the workspace:
//! profile → schema → database → prefix detection → scheduling → cluster
//! simulation, plus the system-level orderings the paper's evaluation rests
//! on.

use nexus::prelude::*;
use nexus_model::{ModelDatabase, PrefixPlan};
use nexus_profile::{profile_model, Micros, ProfilerConfig};
use nexus_simgpu::{SimBatchRunner, SimGpu};
use nexus_workload::apps;

/// The full management-plane path: profile a model on a simulated GPU,
/// ingest base + variants, detect the prefix group, and verify the merged
/// profile the control plane would schedule with.
#[test]
fn management_plane_pipeline() {
    let truth = nexus_profile::catalog::RESNET50.profile_1080ti();
    let mut runner = SimBatchRunner::new(SimGpu::new(GPU_GTX1080TI), truth.clone());
    let measured = profile_model(
        &mut runner,
        ProfilerConfig {
            max_batch: truth.max_batch(),
            repetitions: 3,
        },
    )
    .expect("profiling succeeds");

    let mut db = ModelDatabase::new();
    let base = nexus_model::zoo::resnet50();
    db.ingest(base.clone(), measured.clone()).unwrap();
    for v in 1..=5u64 {
        db.ingest(base.specialize(format!("v{v}"), 1, v), measured.clone())
            .unwrap();
    }
    let groups = db.prefix_groups();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].1.len(), 6);

    let plan = PrefixPlan::new(&base, &measured, groups[0].0.prefix_len);
    let merged = plan.merged_profile(6, 32);
    // Merged serving of 24 inputs spread over 6 variants beats executing
    // six separate batches of 4.
    let separate_tp = 24.0 / (measured.latency(4) * 6).as_secs_f64();
    assert!(
        merged.throughput(24) > 1.5 * separate_tp,
        "merged {:.0} vs separate {separate_tp:.0}",
        merged.throughput(24)
    );
}

/// Nexus sustains a rate at <1% bad where both baselines degrade, on the
/// traffic case study (the Fig. 11 ordering at one operating point).
#[test]
fn nexus_beats_baselines_on_traffic() {
    let run = |system: SystemConfig| {
        nexus::run_once(
            system.with_static_allocation(),
            GPU_GTX1080TI,
            8,
            vec![TrafficClass::new(
                apps::traffic(),
                ArrivalKind::Uniform,
                420.0,
            )],
            3,
            Micros::from_secs(4),
            Micros::from_secs(16),
        )
    };
    let nexus = run(SystemConfig::nexus());
    let tf = run(SystemConfig::tf_serving());
    let clipper = run(SystemConfig::clipper());
    assert!(
        nexus.query_bad_rate < 0.01,
        "nexus bad {}",
        nexus.query_bad_rate
    );
    assert!(
        tf.query_bad_rate > nexus.query_bad_rate,
        "tf {} vs nexus {}",
        tf.query_bad_rate,
        nexus.query_bad_rate
    );
    assert!(
        clipper.query_bad_rate > nexus.query_bad_rate,
        "clipper {} vs nexus {}",
        clipper.query_bad_rate,
        nexus.query_bad_rate
    );
}

/// The builder facade produces the same result as the explicit SimConfig
/// path, and runs are deterministic end to end.
#[test]
fn builder_and_determinism() {
    let via_builder = || {
        NexusCluster::builder()
            .gpus(4)
            .app(apps::dance(), 30.0)
            .horizon_secs(10)
            .warmup_secs(2)
            .seed(11)
            .simulate()
    };
    let a = via_builder();
    let b = via_builder();
    assert_eq!(a.queries_finished, b.queries_finished);
    assert_eq!(a.query_bad_rate, b.query_bad_rate);
    let c = nexus::run_once(
        SystemConfig::nexus(),
        GPU_GTX1080TI,
        4,
        vec![TrafficClass::new(apps::dance(), ArrivalKind::Uniform, 30.0)],
        11,
        Micros::from_secs(2),
        Micros::from_secs(10),
    );
    assert_eq!(a.queries_finished, c.queries_finished);
    assert_eq!(a.query_bad_rate, c.query_bad_rate);
}

/// Every Table 4 application runs cleanly at light load on a big cluster —
/// exercising every catalog model, prefix merging, multi-stage queries, and
/// the latency-split DP in one deployment.
#[test]
fn all_apps_serve_cleanly_at_light_load() {
    let classes: Vec<TrafficClass> = nexus_workload::all_apps()
        .into_iter()
        .map(|app| TrafficClass::new(app, ArrivalKind::Poisson, 20.0))
        .collect();
    let result = nexus::run_once(
        SystemConfig::nexus().with_static_allocation(),
        GPU_GTX1080TI,
        40,
        classes,
        5,
        Micros::from_secs(4),
        Micros::from_secs(16),
    );
    assert!(result.queries_finished > 1_500);
    assert!(
        result.query_bad_rate < 0.01,
        "bad rate {}",
        result.query_bad_rate
    );
}

/// The throughput-search driver reproduces the qualitative early-vs-lazy
/// dispatch result (Fig. 9) through the single-node simulator.
#[test]
fn early_drop_beats_lazy_in_max_goodput() {
    use nexus_runtime::{simulate_node, NodeConfig, NodeSession};
    let measure = |policy: DropPolicy| {
        nexus::max_rate_within(
            &ThroughputSearch {
                target_bad_rate: 0.01,
                lo: 1.0,
                hi: 600.0,
                iters: 8,
            },
            |rate| {
                simulate_node(
                    &NodeConfig {
                        coordinated: true,
                        drop_policy: policy,
                        interference: Default::default(),
                        gpu_memory: 11 << 30,
                        seed: 2,
                        horizon: Micros::from_secs(15),
                        warmup: Micros::from_secs(3),
                        strict_batches: false,
                        ladder: false,
                        trace_capacity: 0,
                    },
                    &[NodeSession {
                        profile: nexus_profile::BatchingProfile::from_linear_ms(1.0, 25.0, 32),
                        slo: Micros::from_millis(100),
                        rate,
                        arrival: ArrivalKind::Poisson,
                    }],
                )
                .bad_rate
            },
        )
    };
    let lazy = measure(DropPolicy::Lazy);
    let early = measure(DropPolicy::Early);
    assert!(
        early > lazy,
        "early drop {early:.0} should beat lazy {lazy:.0}"
    );
}

/// Epoch-driven reallocation reacts to a workload surge and recovers —
/// the Fig. 13 mechanism at small scale.
#[test]
fn epoch_controller_tracks_surge() {
    let classes = vec![
        TrafficClass::new(apps::traffic(), ArrivalKind::Poisson, 80.0).with_modulation(vec![
            (Micros::ZERO, 1.0),
            (Micros::from_secs(25), 2.5),
            (Micros::from_secs(50), 1.0),
        ]),
    ];
    let result = nexus::run_once(
        SystemConfig::nexus()
            .with_epoch(Micros::from_secs(10))
            .with_spread_factor(1.2),
        GPU_GTX1080TI,
        32,
        classes,
        7,
        Micros::from_secs(10),
        Micros::from_secs(75),
    );
    let tl = result.metrics.timeline();
    let before = tl[20].gpus_allocated;
    let during = tl[45].gpus_allocated;
    assert!(
        during > before,
        "allocation should grow under surge: {before} -> {during}"
    );
    // Adaptation lag costs some queries (Fig. 13's reconfiguration
    // spikes); the long-run rate must still be bounded.
    assert!(
        result.query_bad_rate < 0.20,
        "bad rate {} during adaptation",
        result.query_bad_rate
    );
}
