//! The simulator-side chaos gate: a deterministic network-fault schedule
//! at Fig. 13-scale traffic, with routing-epoch updates landing
//! mid-traffic, must conserve every request — arrivals equal completions
//! plus drops-with-cause — and stay byte-identical across shard and
//! thread counts while faults are in play.
//!
//! The live-socket counterpart of this gate (real frontends, a backend
//! killed mid-run, an epoch pushed mid-traffic) lives in
//! `crates/nexus-serve/tests/front_door.rs`; this file pins the same
//! contract on the simulation, where the fault schedule is exact and
//! repeatable by construction.

use nexus::prelude::*;
use nexus_profile::GPU_K80;
use nexus_runtime::{ClusterSim, SimConfig, TraceEvent};

/// Fig. 13 mini (the golden-trace workload shape) plus every network
/// fault kind the simulator knows, staggered across slots so each one's
/// detection and recovery plays out while epochs keep re-planning.
fn chaos_sim(shards: usize, threads: usize) -> nexus_runtime::SimResult {
    let horizon = Micros::from_secs(10);
    let faults = vec![
        // A hard crash: detected by missed heartbeats, emergency re-pack.
        FaultSpec {
            at: Micros::from_secs(4),
            slot: 0,
            kind: FaultKind::Crash,
        },
        FaultSpec {
            at: Micros::from_secs(7),
            slot: 0,
            kind: FaultKind::Rejoin,
        },
        // A connection drop: stops serving silently, same silhouette as
        // a stall; heals on its own.
        FaultSpec {
            at: Micros::from_secs(5),
            slot: 1,
            kind: FaultKind::ConnDrop {
                duration: Micros::from_millis(600),
            },
        },
        // A heartbeat delay: keeps serving but looks dead — the
        // false-positive path through declare-dead and rejoin.
        FaultSpec {
            at: Micros::from_secs(6),
            slot: 2,
            kind: FaultKind::HeartbeatDelay {
                duration: Micros::from_secs(1),
            },
        },
        // A slow loris: drags execution without dying.
        FaultSpec {
            at: Micros::from_secs(5),
            slot: 3,
            kind: FaultKind::SlowLoris {
                factor: 2.5,
                duration: Micros::from_secs(2),
            },
        },
    ];
    ClusterSim::try_new(
        SimConfig {
            system: SystemConfig::nexus()
                .with_epoch(Micros::from_secs(2))
                .with_spread_factor(1.4)
                .with_rejoin_cooldown(Micros::from_secs(3)),
            device: GPU_K80,
            max_gpus: 8,
            seed: 42,
            horizon,
            warmup: Micros::from_secs(2),
            trace_capacity: 1 << 20,
            faults,
            shards,
            threads,
        },
        nexus::workloads::fig13_classes(horizon, 0.08),
    )
    .expect("known models")
    .run()
}

#[test]
fn network_chaos_conserves_every_request() {
    let result = chaos_sim(1, 1);
    let trace = result.trace.as_ref().expect("tracing enabled");

    let mut arrivals = 0u64;
    let mut completions = 0u64;
    let mut drops = 0u64;
    let mut reallocations = 0u64;
    let mut faults = 0u64;
    for e in trace.events() {
        match e {
            TraceEvent::Arrival { .. } => arrivals += 1,
            TraceEvent::Completion { .. } => completions += 1,
            TraceEvent::Drop { .. } => drops += 1,
            TraceEvent::Reallocation { .. } => reallocations += 1,
            TraceEvent::Fault { .. } => faults += 1,
            _ => {}
        }
    }

    // The chaos actually happened and the control loop kept re-planning
    // mid-traffic (epoch updates, emergency re-packs, rejoin re-packs).
    // 4 injected faults trace as Fault events (the rejoin traces as a
    // Reallocation when its deferred re-pack lands).
    assert!(faults >= 4, "only {faults} fault events traced");
    assert!(
        reallocations >= 2,
        "only {reallocations} deployment swaps traced"
    );

    // Conservation: every request that entered the system left it,
    // exactly once, as a completion or a typed drop. Nothing vanished
    // in a fault window and nothing was double-counted on a retry.
    assert!(arrivals > 1_000, "workload too small ({arrivals} arrivals)");
    assert_eq!(
        arrivals,
        completions + drops,
        "conservation broke: {arrivals} arrivals vs {completions} completions + {drops} drops"
    );

    // Most traffic survives the chaos: the faults degrade, not destroy.
    // (The schedule removes up to 3 of 8 GPUs from service at once while
    // the Fig. 13 surge is ramping, so a quarter of queries going bad is
    // expected; losing half would mean containment failed.)
    assert!(
        result.query_bad_rate < 1.0 / 3.0,
        "bad rate {:.3} under chaos",
        result.query_bad_rate
    );
}

#[test]
fn network_chaos_is_deterministic_across_shards_and_threads() {
    let reference = format!("{:?}", chaos_sim(1, 1));
    assert!(!reference.contains("events_processed: 0,"));
    for (shards, threads) in [(4, 1), (1, 4), (4, 4)] {
        assert_eq!(
            format!("{:?}", chaos_sim(shards, threads)),
            reference,
            "chaos run diverged at shards={shards} threads={threads}"
        );
    }
}
