//! Integration tests pinning the paper's worked examples and analytical
//! claims — the cross-crate facts DESIGN.md promises to preserve.

use nexus_profile::{BatchingProfile, Micros};
use nexus_scheduler::{
    fgsp_min_gpus, pipeline_avg_throughput, reduction_from_3partition, squishy_bin_packing,
    SessionId, SessionSpec,
};

fn ms(v: u64) -> Micros {
    Micros::from_millis(v)
}

/// Table 2 / §4.1: the residual-workload example schedules A(batch 8) and
/// B(batch 4) into one 125 ms duty cycle and gives C its own GPU.
#[test]
fn section_4_1_worked_example() {
    let model_a = BatchingProfile::from_anchors(&[(4, ms(50)), (8, ms(75)), (16, ms(100))]);
    let model_b = BatchingProfile::from_anchors(&[(4, ms(50)), (8, ms(90)), (16, ms(125))]);
    let model_c = BatchingProfile::from_anchors(&[(4, ms(60)), (8, ms(95)), (16, ms(125))]);
    let sessions = vec![
        SessionSpec::new(SessionId(0), model_a, ms(200), 64.0),
        SessionSpec::new(SessionId(1), model_b, ms(250), 32.0),
        SessionSpec::new(SessionId(2), model_c, ms(250), 32.0),
    ];
    let alloc = squishy_bin_packing(&sessions, 11 << 30);
    assert_eq!(alloc.gpu_count(), 2);
    let shared = alloc
        .plans
        .iter()
        .find(|p| p.entries.len() == 2)
        .expect("A and B share a GPU");
    assert_eq!(shared.duty_cycle, ms(125));
    assert!(shared.hosts(SessionId(0)) && shared.hosts(SessionId(1)));
}

/// Fig. 4: the average-throughput table for the X→Y pipeline reproduces to
/// one decimal place.
#[test]
fn figure_4_numbers() {
    let cases = [
        ((200.0, 500.0), [192.3, 142.9, 40.0]),
        ((250.0, 400.0), [235.3, 153.8, 34.5]),
        ((300.0, 300.0), [272.7, 150.0, 27.3]),
    ];
    for ((tx, ty), wants) in cases {
        for (gamma, want) in [0.1, 1.0, 10.0].iter().zip(wants) {
            let got = pipeline_avg_throughput(tx, ty, *gamma);
            assert!((got - want).abs() < 0.05, "tx={tx} γ={gamma}: {got}");
        }
    }
}

/// Appendix A: the 3-PARTITION reduction behaves as the hardness proof
/// requires — yes-instances pack into n GPUs, no 4-task group is feasible.
#[test]
fn appendix_a_reduction() {
    // Yes-instance: {1,2,3}×2 and {2,2,2}, B = 6.
    let yes = reduction_from_3partition(&[1, 2, 3, 1, 2, 3, 2, 2, 2], 6);
    assert_eq!(fgsp_min_gpus(&yes), Some(3));
    // No-instance: cannot 3-partition; needs more GPUs.
    let no = reduction_from_3partition(&[3, 3, 3, 3, 3, 3, 1, 1, 1], 6);
    assert!(fgsp_min_gpus(&no).unwrap() > 3);
}

/// §2.2: batching amortizes the fixed cost — the catalog's ResNet-class
/// profiles gain 3–16× at batch 32, and Table 1's cost ordering holds.
#[test]
fn batching_and_cost_claims() {
    for spec in nexus_profile::TABLE1_MODELS {
        let p = spec.profile_1080ti();
        let gain = p.throughput(p.max_batch().min(32)) / p.throughput(1);
        assert!(gain > 1.5, "{}: batch gain {gain:.1}", spec.name);
    }
    let rows = nexus_profile::cost::table1();
    for row in &rows {
        assert!(row.gpu_cost_per_1k < row.cpu_cost_per_1k);
    }
    // GPU latency orders of magnitude below CPU for the big models.
    assert!(rows[2].cpu_latency_ms / rows[2].gpu_latency_ms > 100.0);
}

/// §6.1's merge invariants hold for random session populations: every plan
/// fits its duty cycle and never violates a session SLO (worst case
/// duty + ℓ(b), or 2ℓ(b) for saturated nodes).
#[test]
fn squishy_invariants_on_many_populations() {
    for seed in 0..20u64 {
        // Deterministic pseudo-random population from the seed.
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let sessions: Vec<SessionSpec> = (0..12)
            .map(|i| {
                let alpha = 0.2 + (next() % 30) as f64 / 10.0;
                let beta = 1.0 + (next() % 300) as f64 / 10.0;
                let slo = 60 + next() % 400;
                let rate = 1.0 + (next() % 4_000) as f64 / 10.0;
                SessionSpec::new(
                    SessionId(i),
                    BatchingProfile::from_linear_ms(alpha, beta, 64),
                    ms(slo),
                    rate,
                )
            })
            .collect();
        let alloc = squishy_bin_packing(&sessions, 11 << 30);
        for plan in &alloc.plans {
            let exec_total: Micros = plan.entries.iter().map(|e| e.exec_latency).sum();
            if !plan.saturated {
                assert!(exec_total <= plan.duty_cycle, "seed {seed}: overfull");
            }
            for e in &plan.entries {
                let spec = sessions.iter().find(|s| s.id == e.session).unwrap();
                let worst = if plan.saturated {
                    e.exec_latency * 2
                } else {
                    plan.duty_cycle + e.exec_latency
                };
                assert!(worst <= spec.slo, "seed {seed}: SLO violated");
            }
        }
        // Planned service covers every scheduled session's rate.
        for s in &sessions {
            if alloc.infeasible.contains(&s.id) {
                continue;
            }
            let served: f64 = alloc
                .plans
                .iter()
                .flat_map(|p| {
                    p.entries
                        .iter()
                        .filter(|e| e.session == s.id)
                        .map(|e| f64::from(e.batch) / p.duty_cycle.as_secs_f64())
                })
                .sum();
            // Duty cycles round to integer microseconds, so planned service
            // can undershoot the float rate by a hair.
            assert!(
                served * 1.001 + 1e-3 >= s.rate,
                "seed {seed}: {} underserved ({served:.1} < {:.1})",
                s.id,
                s.rate
            );
        }
    }
}
