//! Sharding and threading determinism: the event-loop shard count is a
//! pure scheduling-state partition (DESIGN.md §13) and the worker-thread
//! count is a pure execution knob over it (DESIGN.md §14), so every
//! observable output of a run — event counts, metrics, bad-rate bit
//! patterns, even the execution trace — must be identical at any
//! `(shards, threads)` combination.
//!
//! These tests compare the `Debug` rendering of the full [`SimResult`]:
//! Rust formats `f64` as the shortest round-trippable string, so equal
//! strings mean equal bit patterns for every float in the result, and the
//! rendering covers the per-session/timeline metrics and captured trace
//! wholesale. ci.sh enforces the same property end to end by byte-diffing
//! simbench `--det-out` files at `--shards 1` vs `--shards 4` and
//! `--threads 1` vs `--threads 4`, and by re-capturing the golden fig13
//! trace with `NEXUS_SIM_SHARDS=4` and `NEXUS_SIM_THREADS=4`.

use nexus::prelude::*;
use nexus_runtime::{FaultKind, FaultSpec, SimConfig};
use nexus_simgpu::ParallelShardedQueue;
use nexus_workload::apps;

/// A small Fig. 13 deployment run (all seven applications, surge included)
/// through the public `run_once_sharded` entry point.
fn fig13_fingerprint(shards: usize, threads: usize) -> String {
    let horizon = Micros::from_secs(6);
    let result = run_once_sharded(
        SystemConfig::nexus()
            .with_epoch(Micros::from_secs(2))
            .with_spread_factor(1.4),
        GPU_K80,
        8,
        nexus::workloads::fig13_classes(horizon, 0.08),
        42,
        Micros::from_secs(2),
        horizon,
        shards,
        threads,
    );
    format!("{result:?}")
}

#[test]
fn fig13_results_are_identical_at_any_shard_count() {
    let reference = fig13_fingerprint(1, 1);
    // Sanity: the run actually did work before we compare fingerprints.
    assert!(
        !reference.contains("events_processed: 0,"),
        "reference run processed no events"
    );
    // 3 and 7 don't divide the backend count evenly — uneven shards must
    // not change the merge order either.
    for shards in [2, 3, 4, 7] {
        assert_eq!(
            fig13_fingerprint(shards, 1),
            reference,
            "sharded run diverged at shards={shards}"
        );
    }
}

#[test]
fn fig13_results_are_identical_at_any_thread_count() {
    let reference = fig13_fingerprint(1, 1);
    assert!(
        !reference.contains("events_processed: 0,"),
        "reference run processed no events"
    );
    // The full matrix of the acceptance gate: threads {1,2,4} across even
    // and uneven shard counts (7 does not divide the backend count).
    for shards in [1, 4, 7] {
        for threads in [1, 2, 4] {
            assert_eq!(
                fig13_fingerprint(shards, threads),
                reference,
                "parallel run diverged at shards={shards} threads={threads}"
            );
        }
    }
}

/// Fault injection plus execution tracing through `ClusterSim` directly:
/// crash/rejoin events route through the sharded mailboxes and the trace
/// records per-batch timestamps, so this exercises the paths
/// `run_once_sharded` leaves dormant.
fn faulted_traced_fingerprint(shards: usize, threads: usize) -> String {
    let result = ClusterSim::new(
        SimConfig {
            system: SystemConfig::nexus().with_epoch(Micros::from_secs(2)),
            device: GPU_GTX1080TI,
            max_gpus: 6,
            seed: 7,
            horizon: Micros::from_secs(8),
            warmup: Micros::from_secs(2),
            trace_capacity: 200_000,
            faults: vec![
                FaultSpec {
                    at: Micros::from_secs(3),
                    slot: 0,
                    kind: FaultKind::Crash,
                },
                FaultSpec {
                    at: Micros::from_secs(5),
                    slot: 0,
                    kind: FaultKind::Rejoin,
                },
            ],
            shards,
            threads,
        },
        vec![TrafficClass::new(
            apps::traffic(),
            ArrivalKind::Poisson,
            150.0,
        )],
    )
    .run();
    format!("{result:?}")
}

#[test]
fn faulted_traced_run_is_identical_at_any_shard_count() {
    let reference = faulted_traced_fingerprint(1, 1);
    assert!(
        reference.contains("Batch {"),
        "reference run captured no trace events"
    );
    for shards in [2, 3] {
        assert_eq!(
            faulted_traced_fingerprint(shards, 1),
            reference,
            "faulted+traced run diverged at shards={shards}"
        );
    }
}

#[test]
fn faulted_traced_run_is_identical_at_any_thread_count() {
    let reference = faulted_traced_fingerprint(1, 1);
    assert!(
        reference.contains("Batch {"),
        "reference run captured no trace events"
    );
    // Fault schedules route crash/rejoin through cross-shard posts; the
    // windowed executor must commit them in exactly the serial order.
    for (shards, threads) in [(2, 2), (3, 4), (4, 4), (7, 2)] {
        assert_eq!(
            faulted_traced_fingerprint(shards, threads),
            reference,
            "faulted+traced run diverged at shards={shards} threads={threads}"
        );
    }
}

/// Mixed-pool determinism: a heterogeneous fleet (1080Ti + K80 pools) with
/// faults and tracing enabled. Cross-pool stage handoffs route through the
/// same sharded mailboxes as everything else, and backends are globally
/// indexed across pools, so the `(shards, threads)` partition must stay a
/// pure execution knob here too.
fn mixed_pool_fingerprint(shards: usize, threads: usize) -> String {
    let pools = vec![
        DevicePool {
            device: GPU_GTX1080TI,
            gpus: 5,
        },
        DevicePool {
            device: GPU_K80,
            gpus: 4,
        },
    ];
    let result = ClusterSim::try_new_pooled(
        SimConfig {
            system: SystemConfig::nexus().with_epoch(Micros::from_secs(2)),
            device: GPU_GTX1080TI,
            max_gpus: 0, // derived from the pools
            seed: 11,
            horizon: Micros::from_secs(8),
            warmup: Micros::from_secs(2),
            trace_capacity: 200_000,
            faults: vec![
                FaultSpec {
                    at: Micros::from_secs(3),
                    slot: 1,
                    kind: FaultKind::Crash,
                },
                FaultSpec {
                    at: Micros::from_secs(5),
                    slot: 1,
                    kind: FaultKind::Rejoin,
                },
            ],
            shards,
            threads,
        },
        pools,
        vec![
            TrafficClass::new(apps::game(), ArrivalKind::Uniform, 400.0),
            TrafficClass::new(apps::traffic(), ArrivalKind::Poisson, 60.0),
            TrafficClass::new(apps::dance(), ArrivalKind::Uniform, 15.0),
        ],
    )
    .expect("pooled plan")
    .run();
    format!("{result:?}")
}

#[test]
fn mixed_pool_run_is_identical_at_any_shard_and_thread_count() {
    let reference = mixed_pool_fingerprint(1, 1);
    assert!(
        reference.contains("Batch {"),
        "reference run captured no trace events"
    );
    // Both pools must actually deploy backends, or the cross-pool paths
    // under test were never exercised.
    assert!(
        reference.contains("PoolStats { pool: 1"),
        "second pool missing from pool_stats"
    );
    // The acceptance matrix: shards {1,4} × threads {1,4}, plus an uneven
    // shard count that does not divide the backend total.
    for (shards, threads) in [(1, 4), (4, 1), (4, 4), (3, 2)] {
        assert_eq!(
            mixed_pool_fingerprint(shards, threads),
            reference,
            "mixed-pool run diverged at shards={shards} threads={threads}"
        );
    }
}

/// Queue-level stress: flood same-timestamp cross-shard posts through the
/// windowed executor at threads ≥ 2 and assert the committed pop stream
/// matches the serial queue exactly. The cluster workloads above rarely
/// produce long same-time runs; this test makes ties the common case.
#[test]
fn same_time_cross_shard_flood_matches_serial_order() {
    for threads in [2, 4] {
        let shards = 5;
        let mut par: ParallelShardedQueue<u64> =
            ParallelShardedQueue::new(shards, threads, Micros(100));
        let mut serial: ParallelShardedQueue<u64> =
            ParallelShardedQueue::new(shards, 1, Micros(100));

        // Deterministic pseudo-random interleave of posts and pops, with
        // heavy timestamp ties: only 4 distinct event times per wave.
        let mut state = 0x9e37_79b9_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut payload = 0u64;
        for wave in 0u64..40 {
            let base = wave * 50;
            for _ in 0..200 {
                let shard = (rng() % shards as u64) as usize;
                let time = Micros(base + rng() % 4);
                par.push_to(shard, time, payload);
                serial.push_to(shard, time, payload);
                payload += 1;
            }
            // Drain roughly half the wave before posting the next one, so
            // later posts land inside already-committed windows.
            for _ in 0..100 {
                let a = par.pop();
                let b = serial.pop();
                assert_eq!(a, b, "threads={threads}: pop diverged mid-wave");
            }
        }
        loop {
            let a = par.pop();
            let b = serial.pop();
            assert_eq!(a, b, "threads={threads}: pop diverged at drain");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(par.len(), 0);
    }
}
