//! Sharding determinism: the event-loop shard count is a pure
//! scheduling-state partition (DESIGN.md §13), so every observable output
//! of a run — event counts, metrics, bad-rate bit patterns, even the
//! execution trace — must be identical at any shard count.
//!
//! These tests compare the `Debug` rendering of the full [`SimResult`]:
//! Rust formats `f64` as the shortest round-trippable string, so equal
//! strings mean equal bit patterns for every float in the result, and the
//! rendering covers the per-session/timeline metrics and captured trace
//! wholesale. ci.sh enforces the same property end to end by byte-diffing
//! simbench `--det-out` files at `--shards 1` vs `--shards 4` and the
//! golden fig13 trace captured with `NEXUS_SIM_SHARDS=4`.

use nexus::prelude::*;
use nexus_runtime::{FaultKind, FaultSpec, SimConfig};
use nexus_workload::apps;

/// A small Fig. 13 deployment run (all seven applications, surge included)
/// through the public `run_once_sharded` entry point.
fn fig13_fingerprint(shards: usize) -> String {
    let horizon = Micros::from_secs(6);
    let result = run_once_sharded(
        SystemConfig::nexus()
            .with_epoch(Micros::from_secs(2))
            .with_spread_factor(1.4),
        GPU_K80,
        8,
        nexus::workloads::fig13_classes(horizon, 0.08),
        42,
        Micros::from_secs(2),
        horizon,
        shards,
    );
    format!("{result:?}")
}

#[test]
fn fig13_results_are_identical_at_any_shard_count() {
    let reference = fig13_fingerprint(1);
    // Sanity: the run actually did work before we compare fingerprints.
    assert!(
        !reference.contains("events_processed: 0,"),
        "reference run processed no events"
    );
    // 3 and 7 don't divide the backend count evenly — uneven shards must
    // not change the merge order either.
    for shards in [2, 3, 4, 7] {
        assert_eq!(
            fig13_fingerprint(shards),
            reference,
            "sharded run diverged at shards={shards}"
        );
    }
}

/// Fault injection plus execution tracing through `ClusterSim` directly:
/// crash/rejoin events route through the sharded mailboxes and the trace
/// records per-batch timestamps, so this exercises the paths
/// `run_once_sharded` leaves dormant.
fn faulted_traced_fingerprint(shards: usize) -> String {
    let result = ClusterSim::new(
        SimConfig {
            system: SystemConfig::nexus().with_epoch(Micros::from_secs(2)),
            device: GPU_GTX1080TI,
            max_gpus: 6,
            seed: 7,
            horizon: Micros::from_secs(8),
            warmup: Micros::from_secs(2),
            trace_capacity: 200_000,
            faults: vec![
                FaultSpec {
                    at: Micros::from_secs(3),
                    slot: 0,
                    kind: FaultKind::Crash,
                },
                FaultSpec {
                    at: Micros::from_secs(5),
                    slot: 0,
                    kind: FaultKind::Rejoin,
                },
            ],
            shards,
        },
        vec![TrafficClass::new(
            apps::traffic(),
            ArrivalKind::Poisson,
            150.0,
        )],
    )
    .run();
    format!("{result:?}")
}

#[test]
fn faulted_traced_run_is_identical_at_any_shard_count() {
    let reference = faulted_traced_fingerprint(1);
    assert!(
        reference.contains("Batch {"),
        "reference run captured no trace events"
    );
    for shards in [2, 3] {
        assert_eq!(
            faulted_traced_fingerprint(shards),
            reference,
            "faulted+traced run diverged at shards={shards}"
        );
    }
}
